//! The **persisted tier**: frozen label arenas snapshotted to disk in a
//! versioned binary segment format with a manifest, loadable at engine
//! build time so historical runs keep answering cross-run queries.
//!
//! A *segment blob* holds one run. **Format v2** (current):
//!
//! ```text
//! magic     8 B   "WFTIERS1"
//! version   u32   2
//! run       u64
//! spec      u32
//! skl_bits  u32
//! source    u32   (u32::MAX = no source recorded)
//! count     u32   labeled vertices
//! arena     u64   arena byte length
//! drl_bits  u64   DRL accounting bits (hot-tier footprint, for stats)
//! frozen_at u64   unix seconds at freeze time (0 = unknown)
//! skl_flag  u32   1 = the five SKL-report fields below are live
//! skl_bits_total u64 ┐
//! skl_build_ns   u64 │ the freeze-time §7.4 SKL re-label deltas, so a
//! drl_query_ns   u64 │ reloaded engine reproduces its DRL-vs-SKL
//! skl_query_ns   u64 │ report (all zero when skl_flag = 0)
//! skl_pairs      u64 ┘
//! slots     count × 12 (vertex u32, name u32, offset u32)
//! bytes     arena encoded labels
//! checksum  u64   FNV-1a over everything above
//! ```
//!
//! **Format v1** (PR 3) lacks the `frozen_at`/SKL fields; v1 blobs stay
//! readable forever (the SKL report reloads as absent). All integers
//! little-endian.
//!
//! Blobs live either in a **per-run file** (`run-<id>.wfseg`, one blob
//! at offset 0 — how spills write them) or in a **packed file**
//! (`pack-<seq>.wfseg`, many blobs concatenated — what compaction
//! produces to cut file count at 10⁵+ runs). Each blob carries its own
//! checksum, so a pack needs no container framing: the manifest
//! (`wf-tier-manifest.txt`, v2: `run file offset len` per line) is the
//! directory. Segments and manifests are written to a temp file, fsynced,
//! renamed into place, **and the directory is fsynced after the rename**
//! — a crash cannot leave the manifest pointing at unsynced segments
//! (sync failures surface as the typed [`SnapshotError::Sync`]). The
//! loader verifies length, magic, version and checksum **and decodes
//! every label** before accepting; a truncated or corrupted snapshot is
//! rejected with a typed error, never a panic.

use crate::bufmgr::{MappedRun, PackMapping};
use crate::freeze::{FrozenRun, SklReport};
use crate::store::SegmentLru;
use crate::telemetry::with_profile;
use crate::{RunId, SpecId};
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use wf_drl::{ArenaSlot, DrlLabel, LabelArena};
use wf_graph::{NameId, VertexId};

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 8] = *b"WFTIERS1";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 2;
/// The PR 3 segment format (no freeze metadata / SKL report persisted).
pub const SEGMENT_VERSION_V1: u32 = 1;
/// Manifest file name inside the spill directory.
pub const MANIFEST_FILE: &str = "wf-tier-manifest.txt";
/// Current manifest header line (`run file offset len` entries).
pub const MANIFEST_HEADER: &str = "wf-tier-manifest v2";
/// The PR 3 manifest header (`run file bytes` entries, offset 0).
pub const MANIFEST_HEADER_V1: &str = "wf-tier-manifest v1";

/// A file holding at least this many runs is considered packed;
/// compaction only repacks *loose* files below the threshold.
pub const MIN_PACK_RUNS: usize = 64;
/// Compaction closes a pack once it holds this many runs…
pub const PACK_MAX_RUNS: usize = 1024;
/// …or this many bytes, whichever comes first.
pub const PACK_TARGET_BYTES: u64 = 64 << 20;

const HEADER_LEN_V1: usize = 8 + 4 + 8 + 4 + 4 + 4 + 4 + 8 + 8;
const HEADER_LEN_V2: usize = HEADER_LEN_V1 + 8 + 4 + 5 * 8;
const CHECKSUM_LEN: usize = 8;

/// Errors reading or writing snapshot segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (message carries the `io::Error`).
    Io(String),
    /// The bytes are not a valid segment: wrong magic/version, truncated,
    /// checksum mismatch, or a label that does not decode.
    Format(String),
    /// An fsync of a just-written file or of the spill directory failed
    /// after the atomic rename — durability of the rename is not
    /// guaranteed, so the operation reports the failure instead of
    /// silently degrading.
    Sync(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Format(e) => write!(f, "invalid snapshot: {e}"),
            SnapshotError::Sync(e) => write!(f, "snapshot fsync failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fsync `dir` so a rename inside it survives a crash. On non-unix
/// platforms directory handles cannot be opened for sync; the rename
/// alone is the best available guarantee there.
fn fsync_dir(dir: &Path) -> Result<(), SnapshotError> {
    #[cfg(unix)]
    {
        let f = fs::File::open(dir)
            .map_err(|e| SnapshotError::Sync(format!("{}: {e}", dir.display())))?;
        f.sync_all()
            .map_err(|e| SnapshotError::Sync(format!("{}: {e}", dir.display())))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Format("truncated segment".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Fixed-size segment header — everything the engine needs to register a
/// persisted run *without* reading its arena (the lazy-load metadata).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentHeader {
    /// The format the blob was written with (1 or 2).
    pub version: u32,
    /// The run the segment holds.
    pub run: RunId,
    /// Its specification (catalog index; must match across restarts).
    pub spec: SpecId,
    /// Skeleton-pointer width the labels were encoded with.
    pub skl_bits: u32,
    /// The run's source vertex, if recorded.
    pub source: Option<VertexId>,
    /// Labeled vertices in the segment.
    pub count: u32,
    /// Arena byte length.
    pub arena_len: u64,
    /// DRL accounting bits (what the run cost in the hot tier).
    pub drl_bits: u64,
    /// Unix seconds at freeze time (0 = unknown; always 0 for v1).
    pub frozen_at: u64,
    /// The freeze-time SKL re-label deltas, when recorded (v2 only).
    pub skl: Option<SklReport>,
}

impl SegmentHeader {
    pub(crate) fn len(&self) -> usize {
        match self.version {
            SEGMENT_VERSION_V1 => HEADER_LEN_V1,
            _ => HEADER_LEN_V2,
        }
    }
}

fn parse_header(bytes: &[u8]) -> Result<SegmentHeader, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8)?;
    if magic != SEGMENT_MAGIC {
        return Err(SnapshotError::Format("bad magic".into()));
    }
    let version = r.u32()?;
    if version != SEGMENT_VERSION_V1 && version != SEGMENT_VERSION {
        return Err(SnapshotError::Format(format!(
            "unsupported segment version {version}"
        )));
    }
    let run = RunId(r.u64()?);
    let spec = SpecId(r.u32()? as usize);
    let skl_bits = r.u32()?;
    let source = match r.u32()? {
        u32::MAX => None,
        v => Some(VertexId(v)),
    };
    let count = r.u32()?;
    let arena_len = r.u64()?;
    let drl_bits = r.u64()?;
    let (frozen_at, skl) = if version >= SEGMENT_VERSION {
        let frozen_at = r.u64()?;
        let flag = r.u32()?;
        let skl_bits_total = r.u64()?;
        let build_ns = r.u64()?;
        let drl_query_ns = r.u64()?;
        let skl_query_ns = r.u64()?;
        let pairs_sampled = r.u64()?;
        let skl = (flag != 0).then_some(SklReport {
            skl_bits: skl_bits_total,
            drl_bits,
            build_ns,
            drl_query_ns,
            skl_query_ns,
            pairs_sampled,
        });
        (frozen_at, skl)
    } else {
        (0, None)
    };
    Ok(SegmentHeader {
        version,
        run,
        spec,
        skl_bits,
        source,
        count,
        arena_len,
        drl_bits,
        frozen_at,
        skl,
    })
}

/// Segment file name for a run spilled on its own.
pub fn segment_file_name(run: RunId) -> String {
    format!("run-{}.wfseg", run.0)
}

/// File name of the `seq`-th packed multi-run segment.
pub fn pack_file_name(seq: u64) -> String {
    format!("pack-{seq}.wfseg")
}

/// One encoder for both format versions: the common prefix, the v2
/// extension block when asked for, then slots + arena + checksum.
fn encode_with_version(frozen: &FrozenRun, version: u32) -> Vec<u8> {
    let arena = frozen.arena();
    let header_len = if version >= SEGMENT_VERSION {
        HEADER_LEN_V2
    } else {
        HEADER_LEN_V1
    };
    let mut out = Vec::with_capacity(
        header_len + arena.len() * ArenaSlot::WIRE_BYTES + arena.encoded_bytes() + CHECKSUM_LEN,
    );
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&frozen.run().0.to_le_bytes());
    out.extend_from_slice(&(frozen.spec().0 as u32).to_le_bytes());
    out.extend_from_slice(&(arena.skl_bits() as u32).to_le_bytes());
    out.extend_from_slice(&frozen.source().map_or(u32::MAX, |v| v.0).to_le_bytes());
    out.extend_from_slice(&(arena.len() as u32).to_le_bytes());
    out.extend_from_slice(&(arena.encoded_bytes() as u64).to_le_bytes());
    out.extend_from_slice(&frozen.drl_bits().to_le_bytes());
    if version >= SEGMENT_VERSION {
        out.extend_from_slice(&frozen.frozen_at().to_le_bytes());
        let report = frozen.skl_report();
        out.extend_from_slice(&u32::from(report.is_some()).to_le_bytes());
        let zero = SklReport {
            skl_bits: 0,
            drl_bits: 0,
            build_ns: 0,
            drl_query_ns: 0,
            skl_query_ns: 0,
            pairs_sampled: 0,
        };
        let r = report.unwrap_or(&zero);
        out.extend_from_slice(&r.skl_bits.to_le_bytes());
        out.extend_from_slice(&r.build_ns.to_le_bytes());
        out.extend_from_slice(&r.drl_query_ns.to_le_bytes());
        out.extend_from_slice(&r.skl_query_ns.to_le_bytes());
        out.extend_from_slice(&r.pairs_sampled.to_le_bytes());
    }
    for slot in arena.slots() {
        slot.write_le(&mut out);
    }
    out.extend_from_slice(arena.bytes());
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Serialize a frozen run into a format-v2 segment blob.
pub fn encode_segment(frozen: &FrozenRun) -> Vec<u8> {
    encode_with_version(frozen, SEGMENT_VERSION)
}

/// Serialize a frozen run into a **format-v1** blob — what PR 3 engines
/// wrote (the common layout minus the v2 extension block). Kept so the
/// v1→v2 migration path stays testable end-to-end; new spills always
/// write v2.
pub fn encode_segment_v1(frozen: &FrozenRun) -> Vec<u8> {
    encode_with_version(frozen, SEGMENT_VERSION_V1)
}

/// Validate a blob's framing — length, magic, version, checksum — and
/// return its header **without** decoding any label. This is the cheap
/// integrity check compaction runs before copying a blob verbatim into a
/// pack (the full label decode still happens at fault-in).
pub fn verify_segment_bytes(bytes: &[u8]) -> Result<SegmentHeader, SnapshotError> {
    if bytes.len() < HEADER_LEN_V1 + CHECKSUM_LEN {
        return Err(SnapshotError::Format("truncated segment".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(SnapshotError::Format("checksum mismatch".into()));
    }
    let header = parse_header(body)?;
    let slots_len = (header.count as usize)
        .checked_mul(ArenaSlot::WIRE_BYTES)
        .ok_or_else(|| SnapshotError::Format("slot count overflow".into()))?;
    let expected = header
        .len()
        .checked_add(slots_len)
        .and_then(|n| n.checked_add(header.arena_len as usize))
        .ok_or_else(|| SnapshotError::Format("length overflow".into()))?;
    if body.len() != expected {
        return Err(SnapshotError::Format(format!(
            "segment length {} does not match header (expected {expected})",
            body.len()
        )));
    }
    Ok(header)
}

/// Parse and fully validate segment bytes (either format version) back
/// into a [`FrozenRun`]. v2 blobs restore their freeze-time SKL report;
/// v1 blobs reload with `skl: None`.
pub fn decode_segment(bytes: &[u8]) -> Result<FrozenRun, SnapshotError> {
    let header = verify_segment_bytes(bytes)?;
    let mut r = ByteReader::new(&bytes[header.len()..bytes.len() - CHECKSUM_LEN]);
    let mut slots = Vec::with_capacity(header.count as usize);
    for _ in 0..header.count {
        let slot = ArenaSlot::read_le(r.take(ArenaSlot::WIRE_BYTES)?)
            .ok_or_else(|| SnapshotError::Format("truncated slot".into()))?;
        slots.push(slot);
    }
    let arena_bytes = r.take(header.arena_len as usize)?.to_vec();
    let arena = LabelArena::from_parts(header.skl_bits as usize, slots, arena_bytes)
        .ok_or_else(|| SnapshotError::Format("arena validation failed".into()))?;
    Ok(FrozenRun {
        run: header.run,
        spec: header.spec,
        source: header.source,
        arena,
        drl_bits: header.drl_bits,
        frozen_at: header.frozen_at,
        skl: header.skl,
        queries: AtomicU64::new(0),
    })
}

/// Atomically write a frozen run's segment into `dir` (temp file →
/// fsync → rename → directory fsync). Returns the final path and the
/// on-disk byte count.
pub fn write_segment(dir: &Path, frozen: &FrozenRun) -> Result<(PathBuf, u64), SnapshotError> {
    fs::create_dir_all(dir)?;
    let bytes = encode_segment(frozen);
    let path = dir.join(segment_file_name(frozen.run()));
    write_blob_file(dir, &path, &bytes)?;
    Ok((path, bytes.len() as u64))
}

/// Atomically materialize `bytes` at `path` inside `dir`: temp file,
/// fsync, rename, directory fsync.
pub(crate) fn write_blob_file(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| SnapshotError::Io("segment path has no file name".into()))?;
    let tmp = dir.join(format!(".{file_name}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
            .map_err(|e| SnapshotError::Sync(format!("{}: {e}", tmp.display())))?;
    }
    fs::rename(&tmp, path)?;
    fsync_dir(dir)
}

/// Read `len` raw bytes at `offset` of `path` (a blob's slice of a
/// per-run or packed file), without validating them.
pub(crate) fn read_raw_range(path: &Path, offset: u64, len: u64) -> Result<Vec<u8>, SnapshotError> {
    let mut f = fs::File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len as usize];
    f.read_exact(&mut buf)
        .map_err(|_| SnapshotError::Format("truncated segment".into()))?;
    Ok(buf)
}

/// Read and validate the blob at `[offset, offset+len)` of `path`.
pub fn read_segment_range(path: &Path, offset: u64, len: u64) -> Result<FrozenRun, SnapshotError> {
    decode_segment(&read_raw_range(path, offset, len)?)
}

/// Read and validate a whole segment file (one blob at offset 0).
pub fn read_segment(path: &Path) -> Result<FrozenRun, SnapshotError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_segment(&bytes)
}

/// Read only the header of the blob at `offset` (the lazy-load
/// registration path — no slots, no arena, no checksum).
pub fn read_header_at(path: &Path, offset: u64) -> Result<SegmentHeader, SnapshotError> {
    let mut f = fs::File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::with_capacity(HEADER_LEN_V2);
    f.take(HEADER_LEN_V2 as u64).read_to_end(&mut buf)?;
    parse_header(&buf)
}

/// Read only a segment file's leading header.
pub fn read_header(path: &Path) -> Result<SegmentHeader, SnapshotError> {
    read_header_at(path, 0)
}

/// One manifest line: a persisted run and the byte range of its blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The persisted run.
    pub run: RunId,
    /// Blob file name (per-run or pack), relative to the spill dir.
    pub file: String,
    /// Byte offset of the run's blob within the file (0 for per-run
    /// files and for every v1 manifest entry).
    pub offset: u64,
    /// Length of the blob in bytes.
    pub bytes: u64,
}

/// Atomically rewrite the manifest with the full persisted set: temp
/// file, fsync, rename, directory fsync — after this returns, a crash
/// cannot resurrect the previous manifest or leave the new one pointing
/// at unsynced data.
///
/// The manifest is **epoch-versioned**: an `epoch <n>` line right after
/// the header records which pack-set version the entries describe, so a
/// restarted engine resumes the [`crate::bufmgr::EpochRegistry`] clock
/// monotonically. The line is shaped so a pre-epoch loader skips it as
/// malformed (its first token is not a run id) — old and new engines
/// read each other's manifests.
pub fn write_manifest(
    dir: &Path,
    entries: &[ManifestEntry],
    epoch: u64,
) -> Result<(), SnapshotError> {
    fs::create_dir_all(dir)?;
    let mut out = String::from(MANIFEST_HEADER);
    out.push('\n');
    out.push_str(&format!("epoch {epoch}\n"));
    for e in entries {
        out.push_str(&format!(
            "{} {} {} {}\n",
            e.run.0, e.file, e.offset, e.bytes
        ));
    }
    write_blob_file(dir, &dir.join(MANIFEST_FILE), out.as_bytes())
}

/// The pack-set epoch recorded in the manifest (0 when absent — every
/// pre-epoch manifest, and a missing manifest, load as epoch 0).
pub fn load_manifest_epoch(dir: &Path) -> u64 {
    let Ok(text) = fs::read_to_string(dir.join(MANIFEST_FILE)) else {
        return 0;
    };
    for line in text.lines().skip(1) {
        let mut parts = line.split_whitespace();
        if parts.next() == Some("epoch") {
            if let Some(Ok(epoch)) = parts.next().map(str::parse::<u64>) {
                return epoch;
            }
        }
    }
    0
}

/// Load the manifest (either header version); a missing file is an empty
/// manifest, malformed lines are skipped (the segment loader
/// re-validates everything, so the manifest is an index, not a trust
/// root). v1 lines (`run file bytes`) load with offset 0.
pub fn load_manifest(dir: &Path) -> Result<Vec<ManifestEntry>, SnapshotError> {
    let path = dir.join(MANIFEST_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    let with_offset = match lines.next().map(str::trim) {
        Some(h) if h == MANIFEST_HEADER => true,
        Some(h) if h == MANIFEST_HEADER_V1 => false,
        other => {
            return Err(SnapshotError::Format(format!(
                "bad manifest header {other:?}"
            )))
        }
    };
    let mut entries = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let (Some(run), Some(file)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(run) = run.parse::<u64>() else {
            continue;
        };
        let entry = if with_offset {
            let (Some(offset), Some(bytes)) = (parts.next(), parts.next()) else {
                continue;
            };
            let (Ok(offset), Ok(bytes)) = (offset.parse::<u64>(), bytes.parse::<u64>()) else {
                continue;
            };
            ManifestEntry {
                run: RunId(run),
                file: file.to_string(),
                offset,
                bytes,
            }
        } else {
            let Some(bytes) = parts.next() else { continue };
            let Ok(bytes) = bytes.parse::<u64>() else {
                continue;
            };
            ManifestEntry {
                run: RunId(run),
                file: file.to_string(),
                offset: 0,
                bytes,
            }
        };
        entries.push(entry);
    }
    Ok(entries)
}

/// Load state of a persisted run's arena: cold, resident, or known-bad.
#[derive(Debug)]
pub(crate) enum LoadState {
    /// Not in memory; the next query faults the blob in.
    Unloaded,
    /// Resident as an owned decoded arena — the fallback path for loose
    /// per-run files (and for packs when mapping is disabled). Queries
    /// answer without touching disk until the LRU sheds the arena.
    Loaded(Arc<FrozenRun>),
    /// Resolved to a byte range inside an `mmap`'d pack: verified once,
    /// then served zero-copy forever. Eviction flips the range's
    /// residency flag and `madvise`s the pages away, but this state —
    /// the parsed metadata — never degrades back to `Unloaded`.
    Mapped(Arc<MappedRun>),
    /// A load failed (the blob vanished or was corrupted after
    /// registration); cached so queries degrade to "no labels" instead
    /// of re-reading a broken file.
    Failed,
}

/// A run living in the persisted tier: registered from a segment header
/// at engine build (or at spill/compaction time), with the full arena
/// **lazily faulted in** on first query. Unlike PR 3's write-once cache,
/// the arena can be *shed* again: every fault-in registers with the
/// store's [`SegmentLru`], which drops least-recently-used arenas when
/// the resident-byte budget is exceeded — so a persisted run that turns
/// hot re-heats to memory speed, and cools back to zero resident bytes
/// when the traffic moves on.
#[derive(Debug)]
pub struct PersistedRun {
    pub(crate) run: RunId,
    pub(crate) spec: SpecId,
    pub(crate) source: Option<VertexId>,
    pub(crate) published: usize,
    /// Length of this run's blob on disk (not the whole file: packs
    /// share one file among many runs).
    pub(crate) disk_bytes: u64,
    pub(crate) path: PathBuf,
    pub(crate) offset: u64,
    pub(crate) frozen_at: u64,
    /// The freeze-time SKL re-label deltas, straight from the v2 header
    /// (absent for v1 blobs) — what lets a reloaded engine reproduce its
    /// §7.4 report without faulting a single arena in.
    pub(crate) skl: Option<SklReport>,
    state: RwLock<LoadState>,
    /// The pack mapping this run's blob lives in, when the engine maps
    /// packs (`mmap_packs`): the pin path resolves through it instead
    /// of faulting an owned copy. `None` for loose per-run files.
    mapping: Option<Arc<PackMapping>>,
    /// Live [`SegmentPin`] count. A pinned blob is never a replacer
    /// victim, so a scan iterating labels off the mapping cannot have
    /// its pages `madvise`d away mid-visit.
    pins: AtomicU32,
    /// LRU recency stamp (the store's logical clock at last query).
    pub(crate) last_access: AtomicU64,
    /// Set when this registration leaves the persisted tier (evicted,
    /// re-heated, or replaced by compaction): a fault-in that races the
    /// departure must not pin the arena in the LRU afterwards.
    pub(crate) retired: AtomicBool,
    lru: Arc<SegmentLru>,
    pub(crate) queries: AtomicU64,
    /// The query counter's value when the run entered the persisted
    /// tier. `queries` carries the run's lifetime count across tier
    /// changes (so engine-wide `queries_answered` stays monotone), but
    /// policy decisions — the auto-re-heat threshold — must only see
    /// traffic received *since* persisting, or every popular run would
    /// bounce straight back to memory after each spill.
    pub(crate) queries_at_persist: u64,
}

impl PersistedRun {
    /// Register a manifest entry by reading its blob header only. When
    /// `mapping` is provided (the entry lives in a mapped pack), reads
    /// resolve through the mapping instead of owned fault-ins.
    pub(crate) fn open_entry(
        dir: &Path,
        entry: &ManifestEntry,
        lru: Arc<SegmentLru>,
        mapping: Option<Arc<PackMapping>>,
    ) -> Result<Self, SnapshotError> {
        let path = dir.join(&entry.file);
        let header = read_header_at(&path, entry.offset)?;
        if header.run != entry.run {
            return Err(SnapshotError::Format(format!(
                "manifest names {} but the blob holds {}",
                entry.run, header.run
            )));
        }
        Ok(Self {
            run: header.run,
            spec: header.spec,
            source: header.source,
            published: header.count as usize,
            disk_bytes: entry.bytes,
            path,
            offset: entry.offset,
            frozen_at: header.frozen_at,
            skl: header.skl,
            state: RwLock::new(LoadState::Unloaded),
            mapping,
            pins: AtomicU32::new(0),
            last_access: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            lru,
            queries: AtomicU64::new(0),
            queries_at_persist: 0,
        })
    }

    /// Register a segment that was just written from `frozen` (spill
    /// path) — header facts come from the in-memory run; the arena still
    /// reloads lazily from disk, which keeps the memory release of
    /// persisting real.
    pub(crate) fn from_frozen(
        frozen: &FrozenRun,
        path: PathBuf,
        disk_bytes: u64,
        lru: Arc<SegmentLru>,
    ) -> Self {
        Self {
            run: frozen.run(),
            spec: frozen.spec(),
            source: frozen.source(),
            published: frozen.published(),
            disk_bytes,
            path,
            offset: 0,
            frozen_at: frozen.frozen_at(),
            skl: frozen.skl_report().copied(),
            state: RwLock::new(LoadState::Unloaded),
            // Spills write loose per-run files — the owned fault-in
            // fallback; compaction later packs (and maps) them.
            mapping: None,
            pins: AtomicU32::new(0),
            last_access: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            lru,
            // Carry the query count across the tier change so the
            // engine-wide `queries_answered` stays monotone; the policy
            // baseline starts here.
            queries: AtomicU64::new(frozen.queries.load(Ordering::Relaxed)),
            queries_at_persist: frozen.queries.load(Ordering::Relaxed),
        }
    }

    /// The compaction/GC swap: the same run re-registered at its new
    /// blob location, carrying the per-run counters forward. Residency
    /// starts cold (the old entry's arena is forgotten with the old
    /// entry); the new pack's mapping rides in so reads resolve through
    /// it immediately.
    pub(crate) fn repacked(
        old: &PersistedRun,
        path: PathBuf,
        offset: u64,
        bytes: u64,
        mapping: Option<Arc<PackMapping>>,
    ) -> Self {
        Self {
            run: old.run,
            spec: old.spec,
            source: old.source,
            published: old.published,
            disk_bytes: bytes,
            path,
            offset,
            frozen_at: old.frozen_at,
            skl: old.skl,
            state: RwLock::new(LoadState::Unloaded),
            mapping,
            pins: AtomicU32::new(0),
            last_access: AtomicU64::new(old.last_access.load(Ordering::Relaxed)),
            retired: AtomicBool::new(false),
            lru: Arc::clone(&old.lru),
            queries: AtomicU64::new(old.queries.load(Ordering::Relaxed)),
            queries_at_persist: old.queries_at_persist,
        }
    }

    /// The run this segment holds.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// On-disk size of the run's blob.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// The blob's file (per-run segment or pack).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the blob within [`Self::path`].
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The freeze-time SKL re-label deltas persisted in the v2 header.
    pub fn skl_report(&self) -> Option<&SklReport> {
        self.skl.as_ref()
    }

    /// Pin the run's bytes for reading, resolving them on first use:
    /// through the pack mapping when one is registered (verify once,
    /// then zero-copy forever), through an owned fault-in otherwise.
    /// The pin makes the blob ineligible for eviction until dropped;
    /// `None` if the blob no longer reads back cleanly.
    ///
    /// The pin count is taken while the state lock is held; the shed
    /// path re-checks it under the (try-)write lock, so a blob can
    /// never be evicted between resolve and pin.
    pub(crate) fn pin(self: &Arc<Self>) -> Option<SegmentPin> {
        self.last_access.store(self.lru.tick(), Ordering::Relaxed);
        let mut admit = false;
        let view = 'resolve: {
            {
                let g = self.state.read().expect("segment state poisoned");
                match &*g {
                    LoadState::Loaded(f) => {
                        self.pins.fetch_add(1, Ordering::AcqRel);
                        with_profile(|p| p.verifies_skipped += 1);
                        break 'resolve PinView::Owned(Arc::clone(f));
                    }
                    LoadState::Mapped(m) => {
                        self.pins.fetch_add(1, Ordering::AcqRel);
                        // A range the replacer madvise'd away pins back
                        // in (the pages re-fault lazily underneath).
                        if !m.resident.swap(true, Ordering::AcqRel) {
                            self.lru.obs.pack_pins.inc();
                            with_profile(|p| p.pack_pins += 1);
                            admit = true;
                        } else {
                            with_profile(|p| p.verifies_skipped += 1);
                        }
                        break 'resolve PinView::Mapped(Arc::clone(m));
                    }
                    LoadState::Failed => return None,
                    LoadState::Unloaded => {}
                }
            }
            let mut g = self.state.write().expect("segment state poisoned");
            match &*g {
                LoadState::Loaded(f) => {
                    self.pins.fetch_add(1, Ordering::AcqRel);
                    with_profile(|p| p.verifies_skipped += 1);
                    break 'resolve PinView::Owned(Arc::clone(f));
                }
                LoadState::Mapped(m) => {
                    self.pins.fetch_add(1, Ordering::AcqRel);
                    if !m.resident.swap(true, Ordering::AcqRel) {
                        self.lru.obs.pack_pins.inc();
                        with_profile(|p| p.pack_pins += 1);
                        admit = true;
                    } else {
                        with_profile(|p| p.verifies_skipped += 1);
                    }
                    break 'resolve PinView::Mapped(Arc::clone(m));
                }
                LoadState::Failed => return None,
                LoadState::Unloaded => {}
            }
            let obs = &self.lru.obs;
            if let Some(map) = &self.mapping {
                // First pin of a mapped blob: the one verification pass
                // (framing + checksum — labels decode lazily later).
                let span = obs.timer();
                match MappedRun::resolve(Arc::clone(map), self.offset, self.disk_bytes) {
                    Ok(m) => {
                        obs.span(
                            &obs.h_pack_pin,
                            "pack_pin",
                            Some(self.run.0),
                            Some("persisted"),
                            span,
                            false,
                            || format!("bytes={}", self.disk_bytes),
                        );
                        let m = Arc::new(m);
                        m.resident.store(true, Ordering::Release);
                        obs.pack_pins.inc();
                        with_profile(|p| p.pack_pins += 1);
                        *g = LoadState::Mapped(Arc::clone(&m));
                        self.pins.fetch_add(1, Ordering::AcqRel);
                        admit = true;
                        break 'resolve PinView::Mapped(m);
                    }
                    Err(_) => {
                        *g = LoadState::Failed;
                        return None;
                    }
                }
            }
            // The owned fault-in fallback — the only pin path that pays
            // for a copy + full decode — so it alone feeds the fault-in
            // histogram (slow faults are promoted into the trace ring).
            let span = obs.timer();
            match read_segment_range(&self.path, self.offset, self.disk_bytes) {
                Ok(f) => {
                    obs.segment_loads.inc();
                    with_profile(|p| {
                        p.fault_ins += 1;
                        p.bytes_faulted += self.disk_bytes;
                    });
                    obs.span(
                        &obs.h_fault_in,
                        "fault_in",
                        Some(self.run.0),
                        Some("persisted"),
                        span,
                        false,
                        || format!("bytes={}", self.disk_bytes),
                    );
                    let f = Arc::new(f);
                    *g = LoadState::Loaded(Arc::clone(&f));
                    self.pins.fetch_add(1, Ordering::AcqRel);
                    admit = true;
                    PinView::Owned(f)
                }
                Err(_) => {
                    *g = LoadState::Failed;
                    return None;
                }
            }
        };
        // Register outside the state lock: the LRU's shed path takes
        // state locks under its own mutex, so nesting the other way
        // around here would risk an ordering inversion.
        if admit {
            self.lru.admit(Arc::clone(self));
        }
        Some(SegmentPin {
            run: Arc::clone(self),
            view,
        })
    }

    /// True while the blob is resident in memory — an owned arena, or a
    /// mapped range whose pages have not been `madvise`d away.
    pub fn is_loaded(&self) -> bool {
        match &*self.state.read().expect("segment state poisoned") {
            LoadState::Loaded(_) => true,
            LoadState::Mapped(m) => m.resident.load(Ordering::Acquire),
            _ => false,
        }
    }

    /// Live pin count (replacer victim filtering).
    pub(crate) fn pinned(&self) -> bool {
        self.pins.load(Ordering::Acquire) > 0
    }

    /// Whether reads resolve through a pack mapping.
    pub fn is_mapped(&self) -> bool {
        self.mapping.is_some()
    }

    /// True once a load has failed (sticky): the blob no longer reads
    /// back cleanly, so retrying — e.g. the auto-re-heat policy — is
    /// pointless until the registration changes.
    pub fn is_load_failed(&self) -> bool {
        matches!(
            &*self.state.read().expect("segment state poisoned"),
            LoadState::Failed
        )
    }

    /// Resident bytes of the loaded blob (0 when cold or failed): the
    /// decoded arena footprint for the owned path, the on-disk blob
    /// length — the pages the mapping can fault — for the mapped path.
    pub(crate) fn resident_bytes(&self) -> u64 {
        match &*self.state.read().expect("segment state poisoned") {
            LoadState::Loaded(f) => f.footprint_bytes() as u64,
            LoadState::Mapped(m) if m.resident.load(Ordering::Acquire) => self.disk_bytes,
            _ => 0,
        }
    }

    /// Drop the resident blob (replacer eviction): the owned arena is
    /// released to the allocator; a mapped range keeps its metadata but
    /// hands its pages back to the kernel with `madvise(DONTNEED)`.
    /// Non-blocking and pin-aware: returns `None` if the state lock is
    /// contended (a fault-in or query is mid-flight), a pin is live, or
    /// nothing is resident; the bytes freed otherwise.
    pub(crate) fn shed(&self) -> Option<u64> {
        let mut g = self.state.try_write().ok()?;
        // Re-checked under the write lock: a pin taken under the read
        // lock has either completed (visible here) or is blocked on us.
        if self.pins.load(Ordering::Acquire) > 0 {
            return None;
        }
        match &*g {
            LoadState::Mapped(m) => {
                if m.resident.swap(false, Ordering::AcqRel) {
                    m.advise_dont_need();
                    Some(self.disk_bytes)
                } else {
                    None
                }
            }
            LoadState::Loaded(_) => match std::mem::replace(&mut *g, LoadState::Unloaded) {
                LoadState::Loaded(f) => Some(f.footprint_bytes() as u64),
                _ => unreachable!("state changed under the write lock"),
            },
            _ => None,
        }
    }
}

/// How a pinned blob's bytes are served.
enum PinView {
    /// Owned decoded arena (loose files / mapping disabled).
    Owned(Arc<FrozenRun>),
    /// Zero-copy range inside an `mmap`'d pack.
    Mapped(Arc<MappedRun>),
}

/// A pinned view of one persisted run's labels — the unified read
/// surface over both resolve paths. While the pin lives, the replacer
/// will not evict the blob (owned arena or mapped pages); dropping it
/// unpins. All label reads decode on demand, identically in both
/// variants, so callers never know which path answered.
pub struct SegmentPin {
    run: Arc<PersistedRun>,
    view: PinView,
}

impl SegmentPin {
    /// Decode the label of `v`.
    pub fn label(&self, v: VertexId) -> Option<DrlLabel> {
        match &self.view {
            PinView::Owned(f) => f.arena.get(v),
            PinView::Mapped(m) => m.label(v),
        }
    }

    /// The module name `v` was published under.
    pub fn name(&self, v: VertexId) -> Option<NameId> {
        match &self.view {
            PinView::Owned(f) => f.arena.name(v),
            PinView::Mapped(m) => m.name(v),
        }
    }

    /// Skeleton-pointer width the labels were encoded with.
    pub fn skl_bits(&self) -> usize {
        match &self.view {
            PinView::Owned(f) => f.arena.skl_bits(),
            PinView::Mapped(m) => m.skl_bits(),
        }
    }

    /// True when this pin serves straight off a pack mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.view, PinView::Mapped(_))
    }

    /// Visit every published `(vertex, name, label)` of the run.
    pub fn for_each_label(&self, mut f: impl FnMut(VertexId, NameId, &DrlLabel)) {
        match &self.view {
            PinView::Owned(fr) => {
                for (v, name, label) in fr.arena.iter() {
                    f(v, name, &label);
                }
            }
            PinView::Mapped(m) => m.for_each_label(f),
        }
    }

    /// Materialize an owned, fully re-validated [`FrozenRun`] — the
    /// re-heat path. The owned variant shares its resident arena; the
    /// mapped variant decodes one out of the mapping. `None` if the
    /// mapped bytes no longer validate.
    pub(crate) fn to_frozen(&self) -> Option<Arc<FrozenRun>> {
        match &self.view {
            PinView::Owned(f) => Some(Arc::clone(f)),
            PinView::Mapped(m) => {
                let h = m.header();
                Some(Arc::new(FrozenRun {
                    run: self.run.run,
                    spec: self.run.spec,
                    source: h.source,
                    arena: m.to_arena()?,
                    drl_bits: h.drl_bits,
                    frozen_at: h.frozen_at,
                    skl: h.skl,
                    queries: AtomicU64::new(0),
                }))
            }
        }
    }
}

impl Drop for SegmentPin {
    fn drop(&mut self) {
        self.run.pins.fetch_sub(1, Ordering::AcqRel);
    }
}
