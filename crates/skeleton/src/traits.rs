//! The interface every skeleton scheme exposes to the run labelers.

use wf_graph::VertexId;
use wf_spec::{GraphId, Specification};

/// Skeleton labels for a whole specification: the static scheme
/// `(φG, πG)` of Section 5.2, covering every graph in `G(S)`.
///
/// DRL stores only *pointers* `(GraphId, VertexId)` into these labels
/// inside its entries (footnote 4), so the trait's query interface takes
/// the pointer, not an owned label value.
pub trait SpecLabeling {
    /// Preprocess the specification (the "labeling the workflow
    /// specification" step of §5.1).
    fn build(spec: &Specification) -> Self
    where
        Self: Sized;

    /// `πG(φG(u), φG(v))` for two vertices of the same specification
    /// graph `g`: true iff `u ;g v`.
    fn reaches(&self, g: GraphId, u: VertexId, v: VertexId) -> bool;

    /// Total storage taken by the skeleton labels in bits (Table 2 —
    /// zero for BFS, which stores no labels).
    fn total_bits(&self) -> usize;

    /// Scheme name for reports ("TCL", "BFS").
    fn scheme_name(&self) -> &'static str;
}
