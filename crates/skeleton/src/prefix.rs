//! Prefix (Dewey) labeling for dynamic trees (Kaplan, Milo & Shabo \[18\]).
//!
//! A node's label is the sequence of child indexes on its root path.
//! Labels are assigned the moment a node is attached and never change —
//! the dynamic-tree property DRL inherits (its `Entry.index` fields *are*
//! a Dewey label, enriched with node kinds and skeleton pointers).
//!
//! This standalone implementation exists for testing the tree layer in
//! isolation and for the label-length analysis in the benches: the total
//! index bits of a Dewey label are `Σ log(fanout)` along the path, which
//! is at most `log(#leaves) + depth` — the reason DRL's measured slope in
//! Figure 14 is ≈ 1× `log n`.

use serde::{Deserialize, Serialize};

/// A Dewey label: child indexes from the root (the root's label is empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DeweyLabel(pub Vec<u32>);

impl DeweyLabel {
    /// The root label.
    pub fn root() -> Self {
        Self(Vec::new())
    }

    /// The label of this node's `i`-th child (indexes start at 1, as in
    /// the paper's Algorithm 1 where the root's index is 0).
    pub fn child(&self, i: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(i);
        Self(v)
    }

    /// Is `self` an ancestor of (or equal to) `other`?
    pub fn is_ancestor_of(&self, other: &DeweyLabel) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Length of the longest common prefix.
    pub fn common_prefix_len(&self, other: &DeweyLabel) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Depth (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Storage bits: the sum of minimal binary widths of the indexes.
    pub fn bit_len(&self) -> usize {
        self.0.iter().map(|&i| crate::interval::bits_for(i)).sum()
    }
}

/// A growing tree labeled with Dewey labels on attach.
#[derive(Debug, Clone, Default)]
pub struct DynamicDewey {
    labels: Vec<DeweyLabel>,
    child_count: Vec<u32>,
}

impl DynamicDewey {
    /// A tree with just a root (node 0).
    pub fn new() -> Self {
        Self {
            labels: vec![DeweyLabel::root()],
            child_count: vec![0],
        }
    }

    /// Attach a new node under `parent`; returns its node id. The label
    /// is fixed immediately (dynamic labeling: no later modification).
    pub fn attach(&mut self, parent: usize) -> usize {
        self.child_count[parent] += 1;
        let label = self.labels[parent].child(self.child_count[parent]);
        self.labels.push(label);
        self.child_count.push(0);
        self.labels.len() - 1
    }

    /// The (immutable) label of a node.
    pub fn label(&self, node: usize) -> &DeweyLabel {
        &self.labels[node]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Always false (a root exists).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_encode_paths() {
        let mut t = DynamicDewey::new();
        let a = t.attach(0); // 1
        let b = t.attach(0); // 2
        let c = t.attach(a); // 1.1
        let d = t.attach(a); // 1.2
        assert_eq!(t.label(a).0, vec![1]);
        assert_eq!(t.label(b).0, vec![2]);
        assert_eq!(t.label(c).0, vec![1, 1]);
        assert_eq!(t.label(d).0, vec![1, 2]);
        assert!(t.label(0).is_ancestor_of(t.label(d)));
        assert!(t.label(a).is_ancestor_of(t.label(c)));
        assert!(!t.label(b).is_ancestor_of(t.label(c)));
        assert!(t.label(c).is_ancestor_of(t.label(c)));
        assert_eq!(t.label(c).common_prefix_len(t.label(d)), 1);
        assert_eq!(t.label(c).depth(), 2);
    }

    #[test]
    fn labels_never_change_as_tree_grows() {
        let mut t = DynamicDewey::new();
        let a = t.attach(0);
        let before = t.label(a).clone();
        for _ in 0..100 {
            t.attach(0);
            t.attach(a);
        }
        assert_eq!(t.label(a), &before);
    }

    #[test]
    fn bit_len_sums_index_widths() {
        let l = DeweyLabel(vec![1, 2, 5, 300]);
        assert_eq!(l.bit_len(), 1 + 2 + 3 + 9);
    }
}
