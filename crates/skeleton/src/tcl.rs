//! TCL: transitive-closure labels — the simple scheme of Section 3.2.
//!
//! The `i`-th vertex (in insertion/topological order) gets a bitmap of
//! `i−1` bits recording which earlier vertices reach it. Queries decode
//! the two indexes from the label lengths and test one bit. The maximum
//! label length is `n−1` bits, which *matches* the Ω(n) lower bound of
//! Theorem 1 — this is simultaneously the paper's dynamic upper bound for
//! arbitrary DAG executions and the cheap static scheme used to label
//! specifications ("TCL" in §7).

use crate::traits::SpecLabeling;
use wf_graph::{BitSet, Graph, VertexId};
use wf_spec::{GraphId, Specification};

/// Dynamic transitive-closure labeler for one growing DAG
/// (execution-based; Section 3.2's `(φ, π)`).
#[derive(Debug, Clone, Default)]
pub struct TclDynamic {
    /// `reach[i]` = bitmap over insertion indexes `0..i` ( bit `j` set iff
    /// vertex `j` reaches vertex `i`). This *is* `φ(v_{i+1})` — the paper
    /// indexes from 1.
    reach: Vec<BitSet>,
}

impl TclDynamic {
    /// Start with the empty graph `g∅`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert the next vertex given the insertion indexes of its
    /// immediate predecessors; returns the new vertex's insertion index.
    pub fn insert(&mut self, pred_indexes: &[usize]) -> usize {
        let i = self.reach.len();
        let mut bits = BitSet::zeros(i);
        for &p in pred_indexes {
            assert!(p < i, "predecessor {p} must precede vertex {i}");
            bits.set(p);
            let pred = self.reach[p].clone();
            bits.union_with(&pred);
        }
        // Keep logical length exactly i (union_with cannot exceed it here
        // because predecessors have shorter labels).
        self.reach.push(bits);
        i
    }

    /// `π(φ(u), φ(v))`: does insertion-index `u` reach insertion-index `v`?
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        u == v || (u < v && self.reach[v].get(u))
    }

    /// Number of labeled vertices.
    pub fn len(&self) -> usize {
        self.reach.len()
    }

    /// True if nothing was inserted yet.
    pub fn is_empty(&self) -> bool {
        self.reach.is_empty()
    }

    /// Label length in bits of vertex `i` (`= i`, i.e. `n−1` for the last
    /// vertex of an `n`-vertex graph).
    pub fn label_bits(&self, i: usize) -> usize {
        self.reach[i].len()
    }

    /// Total label storage in bits.
    pub fn total_bits(&self) -> usize {
        self.reach.iter().map(|b| b.len()).sum()
    }
}

/// Static TCL labels for one finished graph: vertices are (re)inserted in
/// a deterministic topological order and labeled with [`TclDynamic`].
#[derive(Debug, Clone)]
pub struct TclLabels {
    dynamic: TclDynamic,
    /// Insertion index per vertex slot (`usize::MAX` for dead slots).
    pos: Vec<usize>,
}

impl TclLabels {
    /// Label a static DAG.
    pub fn build(g: &Graph) -> Self {
        let order = wf_graph::topo::topological_order(g).expect("TCL requires a DAG");
        let mut pos = vec![usize::MAX; g.slot_count()];
        let mut dynamic = TclDynamic::new();
        for v in order {
            let preds: Vec<usize> = g.in_neighbors(v).iter().map(|p| pos[p.idx()]).collect();
            pos[v.idx()] = dynamic.insert(&preds);
        }
        Self { dynamic, pos }
    }

    /// `u ;g v` from labels alone.
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        let (pu, pv) = (self.pos[u.idx()], self.pos[v.idx()]);
        pu != usize::MAX && pv != usize::MAX && self.dynamic.reaches(pu, pv)
    }

    /// Total label storage in bits.
    pub fn total_bits(&self) -> usize {
        self.dynamic.total_bits()
    }
}

/// TCL skeleton labels for every graph of a specification.
#[derive(Debug, Clone)]
pub struct TclSpecLabels {
    per_graph: Vec<TclLabels>,
}

impl SpecLabeling for TclSpecLabels {
    fn build(spec: &Specification) -> Self {
        Self {
            per_graph: spec
                .graph_ids()
                .map(|gid| TclLabels::build(spec.graph(gid)))
                .collect(),
        }
    }

    fn reaches(&self, g: GraphId, u: VertexId, v: VertexId) -> bool {
        self.per_graph[g.idx()].reaches(u, v)
    }

    fn total_bits(&self) -> usize {
        self.per_graph.iter().map(|t| t.total_bits()).sum()
    }

    fn scheme_name(&self) -> &'static str {
        "TCL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_graph::NameId;

    #[test]
    fn dynamic_matches_paper_label_lengths() {
        // Path a -> b -> c: labels of 0, 1, 2 bits; max = n − 1.
        let mut d = TclDynamic::new();
        let a = d.insert(&[]);
        let b = d.insert(&[a]);
        let c = d.insert(&[b]);
        assert_eq!(d.label_bits(a), 0);
        assert_eq!(d.label_bits(b), 1);
        assert_eq!(d.label_bits(c), 2);
        assert!(d.reaches(a, c));
        assert!(d.reaches(b, c));
        assert!(!d.reaches(c, a));
        assert!(d.reaches(b, b));
    }

    #[test]
    fn dynamic_handles_parallel_branches() {
        let mut d = TclDynamic::new();
        let s = d.insert(&[]);
        let x = d.insert(&[s]);
        let y = d.insert(&[s]);
        let t = d.insert(&[x, y]);
        assert!(!d.reaches(x, y) && !d.reaches(y, x));
        assert!(d.reaches(s, t) && d.reaches(x, t) && d.reaches(y, t));
    }

    #[test]
    fn static_labels_match_bfs_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for n in [2usize, 5, 12, 30] {
            let names: Vec<NameId> = (0..n as u32).map(NameId).collect();
            let g = wf_graph::random::random_two_terminal(&mut rng, &names, 0.2);
            let tcl = TclLabels::build(&g);
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(
                        tcl.reaches(u, v),
                        wf_graph::reach::reaches(&g, u, v),
                        "n={n} {u:?}->{v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn spec_labels_cover_all_graphs() {
        let spec = wf_spec::corpus::running_example();
        let labels = TclSpecLabels::build(&spec);
        for gid in spec.graph_ids() {
            let g = spec.graph(gid);
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(labels.reaches(gid, u, v), wf_graph::reach::reaches(g, u, v));
                }
            }
        }
        assert!(labels.total_bits() > 0);
        assert_eq!(labels.scheme_name(), "TCL");
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn dynamic_rejects_forward_predecessor() {
        let mut d = TclDynamic::new();
        d.insert(&[0]);
    }
}
