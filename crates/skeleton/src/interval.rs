//! Interval labeling for static rooted trees (Santoro & Khatib \[22\]).
//!
//! Every node gets `[pre, post]` from a DFS; `x` is an ancestor of `y`
//! (inclusive) iff `pre(x) ≤ pre(y) ≤ post(x)`. The paper's static SKL
//! baseline labels its parse tree this way, which is why SKL's label
//! length has the `3·log n` slope of eq. (4) — intervals over the run-size
//! tree, versus DRL's prefix labels whose per-level indexes multiply out
//! to `≈ 1·log n` bits in total.

use serde::{Deserialize, Serialize};

/// Interval label of one tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Preorder entry number.
    pub pre: u32,
    /// Largest preorder number in the subtree.
    pub post: u32,
}

impl Interval {
    /// Inclusive ancestor-or-self test.
    pub fn contains(&self, other: &Interval) -> bool {
        self.pre <= other.pre && other.pre <= self.post
    }

    /// Bits needed to store this label (two numbers).
    pub fn bit_len(&self) -> usize {
        bits_for(self.pre) + bits_for(self.post)
    }
}

/// Minimal binary width of `x` (`⌊log₂ max(x,1)⌋ + 1`).
pub fn bits_for(x: u32) -> usize {
    (32 - x.max(1).leading_zeros()) as usize
}

/// Interval labels for a static tree given as a `children` adjacency list.
#[derive(Debug, Clone)]
pub struct IntervalLabels {
    labels: Vec<Interval>,
}

impl IntervalLabels {
    /// DFS-number the tree rooted at `root`. `children[i]` lists node
    /// `i`'s children in order. Nodes unreachable from the root keep the
    /// sentinel `[u32::MAX, 0]` (contained by nothing, containing
    /// nothing).
    pub fn from_tree(children: &[Vec<usize>], root: usize) -> Self {
        let mut labels = vec![
            Interval {
                pre: u32::MAX,
                post: 0
            };
            children.len()
        ];
        // Iterative DFS (trees can be deep for nonlinear recursion).
        let mut counter: u32 = 0;
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        labels[root].pre = counter;
        counter += 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < children[node].len() {
                let child = children[node][*next];
                *next += 1;
                labels[child].pre = counter;
                counter += 1;
                stack.push((child, 0));
            } else {
                labels[node].post = counter - 1;
                stack.pop();
            }
        }
        Self { labels }
    }

    /// The interval of node `i`.
    pub fn label(&self, i: usize) -> Interval {
        self.labels[i]
    }

    /// Is `a` an ancestor of (or equal to) `b`?
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        self.labels[a].contains(&self.labels[b])
    }

    /// Number of labeled slots.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed tree:
    /// ```text
    ///        0
    ///      / | \
    ///     1  2  3
    ///    / \     \
    ///   4   5     6
    /// ```
    fn tree() -> Vec<Vec<usize>> {
        vec![
            vec![1, 2, 3],
            vec![4, 5],
            vec![],
            vec![6],
            vec![],
            vec![],
            vec![],
        ]
    }

    #[test]
    fn ancestor_queries_match_structure() {
        let labels = IntervalLabels::from_tree(&tree(), 0);
        let ancestors: &[(usize, usize, bool)] = &[
            (0, 4, true),
            (1, 4, true),
            (1, 5, true),
            (1, 6, false),
            (3, 6, true),
            (2, 2, true),
            (4, 1, false),
            (5, 4, false),
        ];
        for &(a, b, expect) in ancestors {
            assert_eq!(labels.is_ancestor(a, b), expect, "{a} anc {b}");
        }
    }

    #[test]
    fn preorder_numbers_are_dense() {
        let labels = IntervalLabels::from_tree(&tree(), 0);
        let mut pres: Vec<u32> = (0..7).map(|i| labels.label(i).pre).collect();
        pres.sort_unstable();
        assert_eq!(pres, (0..7).collect::<Vec<u32>>());
        assert_eq!(labels.label(0).post, 6);
    }

    #[test]
    fn deep_tree_does_not_overflow_stack() {
        let n = 200_000;
        let mut children = vec![Vec::new(); n];
        for (i, c) in children.iter_mut().enumerate().take(n - 1) {
            c.push(i + 1);
        }
        let labels = IntervalLabels::from_tree(&children, 0);
        assert!(labels.is_ancestor(0, n - 1));
        assert!(!labels.is_ancestor(n - 1, 0));
    }

    #[test]
    fn bits_for_widths() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}
