//! BFS: the no-label skeleton "scheme" of Section 7.1.
//!
//! "BFS does not perform any labeling, but answers a reachability query by
//! a breadth-first search over the graph." Storage is zero; query time is
//! linear in the (small) specification graph — exactly the trade-off
//! Figures 16 and 22 measure.

use crate::traits::SpecLabeling;
use wf_graph::{Graph, VertexId};
use wf_spec::{GraphId, Specification};

/// BFS query oracle over one static graph (keeps a copy of the graph; no
/// per-vertex labels).
#[derive(Debug, Clone)]
pub struct BfsOracle {
    graph: Graph,
}

impl BfsOracle {
    /// Snapshot the graph for querying.
    pub fn build(g: &Graph) -> Self {
        Self { graph: g.clone() }
    }

    /// `u ;g v` by breadth-first search.
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        wf_graph::reach::reaches(&self.graph, u, v)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

/// BFS "labels" for every graph of a specification.
#[derive(Debug, Clone)]
pub struct BfsSpecLabels {
    per_graph: Vec<BfsOracle>,
}

impl SpecLabeling for BfsSpecLabels {
    fn build(spec: &Specification) -> Self {
        Self {
            per_graph: spec
                .graph_ids()
                .map(|gid| BfsOracle::build(spec.graph(gid)))
                .collect(),
        }
    }

    fn reaches(&self, g: GraphId, u: VertexId, v: VertexId) -> bool {
        self.per_graph[g.idx()].reaches(u, v)
    }

    fn total_bits(&self) -> usize {
        0 // no labels are stored
    }

    fn scheme_name(&self) -> &'static str {
        "BFS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcl::TclSpecLabels;

    #[test]
    fn bfs_agrees_with_tcl_on_spec_graphs() {
        let spec = wf_spec::corpus::bioaid();
        let bfs = BfsSpecLabels::build(&spec);
        let tcl = TclSpecLabels::build(&spec);
        for gid in spec.graph_ids() {
            let g = spec.graph(gid);
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(bfs.reaches(gid, u, v), tcl.reaches(gid, u, v));
                }
            }
        }
        assert_eq!(bfs.total_bits(), 0);
        assert_eq!(bfs.scheme_name(), "BFS");
    }
}
