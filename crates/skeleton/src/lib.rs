//! # wf-skeleton
//!
//! Static reachability labeling schemes for workflow *specification*
//! graphs — the "skeleton labels" of the skeleton-based labeling framework
//! (Section 5.1).
//!
//! Runs derived from a specification can be huge, but the graphs in
//! `G(S) = {g0} ∪ {h | (A, h) ∈ I}` are tiny (tens of vertices), so *any*
//! static scheme works for them; the paper evaluates two deliberately
//! simple ones and we reproduce both:
//!
//! * **TCL** ([`TclLabels`] / [`TclSpecLabels`]): precomputed transitive
//!   closure — the Section 3.2 scheme. Linear-size labels, O(1) queries.
//!   Its dynamic variant ([`TclDynamic`]) doubles as the matching upper
//!   bound (`n−1` bits) for labeling arbitrary dynamic DAGs.
//! * **BFS** ([`BfsOracle`] / [`BfsSpecLabels`]): no labels at all; every
//!   query runs a breadth-first search over the specification graph.
//!
//! The crate also provides the two classic tree labelings the paper builds
//! on: interval labels \[22\] ([`interval`]) used by the static SKL
//! baseline, and prefix/Dewey labels \[18\] ([`prefix`]) underlying DRL's
//! entry lists.

pub mod bfs;
pub mod interval;
pub mod prefix;
pub mod tcl;
pub mod traits;

pub use bfs::{BfsOracle, BfsSpecLabels};
pub use tcl::{TclDynamic, TclLabels, TclSpecLabels};
pub use traits::SpecLabeling;
