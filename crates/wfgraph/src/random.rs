//! Seeded random two-terminal DAG generation.
//!
//! The synthetic workflows of Section 7.3 use "random two-terminal graphs
//! of some fixed size" as sub-workflow bodies (Figure 13). The generator
//! here produces exactly that: a DAG over `n` vertices with a single
//! source, a single sink, no self-loops and no multi-edges, where every
//! vertex lies on a source→sink path (the two-terminal invariant the
//! labeling schemes rely on).

use crate::graph::{Graph, NameId, VertexId};
use rand::Rng;

/// Generate a random two-terminal DAG with `names.len()` vertices.
///
/// `names[0]` names the source, `names[n-1]` the sink. `density` in
/// `[0, 1]` controls how many extra forward edges are added beyond the
/// spanning structure that guarantees two-terminality.
///
/// # Panics
/// Panics if `names.len() < 2`.
pub fn random_two_terminal<R: Rng>(rng: &mut R, names: &[NameId], density: f64) -> Graph {
    let n = names.len();
    assert!(
        n >= 2,
        "a two-terminal graph needs at least source and sink"
    );
    let mut g = Graph::with_capacity(n);
    let vs: Vec<VertexId> = names.iter().map(|&nm| g.add_vertex(nm)).collect();

    // Backbone: every internal vertex gets one incoming edge from a random
    // earlier vertex (excluding the sink), which makes everything reachable
    // from the source once the source is the only root.
    for i in 1..n - 1 {
        let j = rng.gen_range(0..i);
        g.add_edge(vs[j], vs[i]).unwrap();
    }
    // Sprinkle extra forward edges (i -> j, i < j), skipping duplicates.
    for i in 0..n - 1 {
        for j in (i + 1)..n {
            if g.out_neighbors(vs[i]).contains(&vs[j]) {
                continue;
            }
            if rng.gen_bool(density) {
                g.add_edge(vs[i], vs[j]).unwrap();
            }
        }
    }
    // Fix-ups: every non-sink without out-edges points to the sink; every
    // non-source without in-edges is fed by the source.
    for i in 0..n - 1 {
        if g.out_neighbors(vs[i]).is_empty() {
            g.add_edge(vs[i], vs[n - 1]).unwrap();
        }
    }
    for i in 1..n {
        if g.in_neighbors(vs[i]).is_empty() {
            g.add_edge(vs[0], vs[i]).unwrap();
        }
    }
    debug_assert!(g.is_two_terminal());
    debug_assert!(g.is_acyclic());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::reaches;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_are_two_terminal_dags() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 3, 5, 10, 40] {
            for density in [0.0, 0.1, 0.5] {
                let names: Vec<NameId> = (0..n as u32).map(NameId).collect();
                let g = random_two_terminal(&mut rng, &names, density);
                assert_eq!(g.vertex_count(), n);
                assert!(g.is_two_terminal(), "n={n} density={density}");
                assert!(g.is_acyclic());
                let s = g.source().unwrap();
                let t = g.sink().unwrap();
                for v in g.vertices() {
                    assert!(reaches(&g, s, v), "source must reach all");
                    assert!(reaches(&g, v, t), "all must reach sink");
                }
            }
        }
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let names: Vec<NameId> = (0..12u32).map(NameId).collect();
        let g1 = random_two_terminal(&mut StdRng::seed_from_u64(7), &names, 0.3);
        let g2 = random_two_terminal(&mut StdRng::seed_from_u64(7), &names, 0.3);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "at least source and sink")]
    fn rejects_single_vertex() {
        let mut rng = StdRng::seed_from_u64(0);
        random_two_terminal(&mut rng, &[NameId(0)], 0.5);
    }
}
