//! The four graph operations of Section 2.1 (Definitions 1–4).
//!
//! Series and parallel composition build the bodies of loop/fork
//! productions (Definition 6); vertex insertion lives on [`crate::Graph`]
//! directly (it is a mutation of one graph); vertex replacement
//! (`g[u/h]`) is the derivation step of the derivation-based dynamic
//! labeling problem (Definition 9).
//!
//! All composing operations return, alongside the result, the mapping from
//! each operand's vertex slots to the new ids, because the labeling
//! machinery must know which run vertex instantiates which specification
//! vertex.

use crate::error::GraphError;
use crate::graph::{Graph, VertexId};

/// Mapping from a source graph's slots to ids in a destination graph
/// (`None` for tombstoned source slots).
pub type SlotMap = Vec<Option<VertexId>>;

/// Copy all live vertices and edges of `src` into `dst`; returns the slot
/// map from `src` ids to new `dst` ids.
pub fn copy_into(dst: &mut Graph, src: &Graph) -> SlotMap {
    let mut map: SlotMap = vec![None; src.slot_count()];
    for v in src.vertices() {
        map[v.idx()] = Some(dst.add_vertex(src.name(v)));
    }
    for (u, v) in src.edges() {
        dst.add_edge(map[u.idx()].unwrap(), map[v.idx()].unwrap())
            .expect("copying a simple DAG cannot create duplicate edges");
    }
    map
}

/// Series composition `S(g1, …, gn)` (Definition 1): the union of the
/// operands plus edges `(t(gi), s(gi+1))`.
///
/// Every operand must be two-terminal; the result is two-terminal.
pub fn series(parts: &[&Graph]) -> Result<(Graph, Vec<SlotMap>), GraphError> {
    if parts.is_empty() {
        return Err(GraphError::EmptyComposition);
    }
    let mut out = Graph::with_capacity(parts.iter().map(|p| p.vertex_count()).sum());
    let mut maps = Vec::with_capacity(parts.len());
    let mut prev_sink: Option<VertexId> = None;
    for part in parts {
        if !part.is_two_terminal() {
            return Err(GraphError::NotTwoTerminal);
        }
        let map = copy_into(&mut out, part);
        let src = map[part.source()?.idx()].unwrap();
        let snk = map[part.sink()?.idx()].unwrap();
        if let Some(p) = prev_sink {
            out.add_edge(p, src)?;
        }
        prev_sink = Some(snk);
        maps.push(map);
    }
    Ok((out, maps))
}

/// Parallel composition `P(g1, …, gn)` (Definition 2): the plain union of
/// the operands' vertex and edge sets.
///
/// Note that for `n > 1` the result is *not* two-terminal — it has `n`
/// sources and `n` sinks. That is intentional: when a parallel body
/// replaces a fork vertex, Definition 4 wires *all* sources and *all*
/// sinks to the fork vertex's neighbors.
pub fn parallel(parts: &[&Graph]) -> Result<(Graph, Vec<SlotMap>), GraphError> {
    if parts.is_empty() {
        return Err(GraphError::EmptyComposition);
    }
    let mut out = Graph::with_capacity(parts.iter().map(|p| p.vertex_count()).sum());
    let mut maps = Vec::with_capacity(parts.len());
    for part in parts {
        if !part.is_two_terminal() {
            return Err(GraphError::NotTwoTerminal);
        }
        maps.push(copy_into(&mut out, part));
    }
    Ok((out, maps))
}

/// Vertex replacement `g[u/h]` (Definition 4): delete `u` and its incident
/// edges; add `h`; connect every predecessor of `u` to every source of `h`
/// and every sink of `h` to every successor of `u`.
///
/// `h` may have multiple sources/sinks (it is a parallel composition when
/// a fork vertex is replaced). Returns the slot map from `h` into `g`.
pub fn replace_vertex(g: &mut Graph, u: VertexId, h: &Graph) -> Result<SlotMap, GraphError> {
    if !g.is_live(u) {
        return Err(GraphError::UnknownVertex(u));
    }
    let preds: Vec<VertexId> = g.in_neighbors(u).to_vec();
    let succs: Vec<VertexId> = g.out_neighbors(u).to_vec();
    g.remove_vertex(u)?;
    let map = copy_into(g, h);
    let sources: Vec<VertexId> = h
        .sources()
        .into_iter()
        .map(|s| map[s.idx()].unwrap())
        .collect();
    let sinks: Vec<VertexId> = h
        .sinks()
        .into_iter()
        .map(|t| map[t.idx()].unwrap())
        .collect();
    for &p in &preds {
        for &s in &sources {
            g.add_edge(p, s)?;
        }
    }
    for &t in &sinks {
        for &v in &succs {
            g.add_edge(t, v)?;
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NameId;
    use crate::reach::{reaches, ReachOracle};

    fn edge_graph(a: u32, b: u32) -> Graph {
        let mut g = Graph::new();
        let s = g.add_vertex(NameId(a));
        let t = g.add_vertex(NameId(b));
        g.add_edge(s, t).unwrap();
        g
    }

    #[test]
    fn series_chains_terminals() {
        let g1 = edge_graph(0, 1);
        let g2 = edge_graph(2, 3);
        let g3 = edge_graph(4, 5);
        let (s, maps) = series(&[&g1, &g2, &g3]).unwrap();
        assert!(s.is_two_terminal());
        assert_eq!(s.vertex_count(), 6);
        assert_eq!(s.edge_count(), 5);
        // Sink of part i connects to source of part i+1.
        let t1 = maps[0][g1.sink().unwrap().idx()].unwrap();
        let s2 = maps[1][g2.source().unwrap().idx()].unwrap();
        assert!(s.out_neighbors(t1).contains(&s2));
        // End-to-end reachability.
        let first = maps[0][g1.source().unwrap().idx()].unwrap();
        let last = maps[2][g3.sink().unwrap().idx()].unwrap();
        assert!(reaches(&s, first, last));
    }

    #[test]
    fn parallel_is_disjoint_union() {
        let g1 = edge_graph(0, 1);
        let g2 = edge_graph(2, 3);
        let (p, maps) = parallel(&[&g1, &g2]).unwrap();
        assert_eq!(p.vertex_count(), 4);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.sources().len(), 2);
        assert_eq!(p.sinks().len(), 2);
        let a = maps[0][g1.source().unwrap().idx()].unwrap();
        let b = maps[1][g2.sink().unwrap().idx()].unwrap();
        assert!(!reaches(&p, a, b));
    }

    #[test]
    fn compositions_reject_empty_and_non_two_terminal() {
        assert_eq!(series(&[]).unwrap_err(), GraphError::EmptyComposition);
        assert_eq!(parallel(&[]).unwrap_err(), GraphError::EmptyComposition);
        let g1 = edge_graph(0, 1);
        let (p, _) = parallel(&[&g1, &g1]).unwrap();
        assert_eq!(series(&[&p]).unwrap_err(), GraphError::NotTwoTerminal);
        assert_eq!(
            parallel(&[&g1, &p]).unwrap_err(),
            GraphError::NotTwoTerminal
        );
    }

    #[test]
    fn replace_vertex_wires_all_terminals() {
        // host: s -> u -> t
        let mut g = Graph::new();
        let s = g.add_vertex(NameId(0));
        let u = g.add_vertex(NameId(1));
        let t = g.add_vertex(NameId(2));
        g.add_edge(s, u).unwrap();
        g.add_edge(u, t).unwrap();
        // body: two parallel edges (fork semantics).
        let b = edge_graph(10, 11);
        let (body, _) = parallel(&[&b, &b]).unwrap();
        let map = replace_vertex(&mut g, u, &body).unwrap();
        assert!(!g.is_live(u));
        assert_eq!(g.vertex_count(), 2 + 4);
        // s reaches every body vertex, every body vertex reaches t.
        for slot in body.vertices() {
            let v = map[slot.idx()].unwrap();
            assert!(reaches(&g, s, v));
            assert!(reaches(&g, v, t));
        }
        // The two branches stay parallel.
        let a0 = map[0].unwrap();
        let b1 = map[3].unwrap();
        assert!(!reaches(&g, a0, b1) && !reaches(&g, b1, a0));
        assert!(g.is_two_terminal());
    }

    #[test]
    fn replacement_preserves_reachability_of_survivors() {
        // Remark 1 / Lemma 4.3: replacement must not change reachability
        // between any pair of pre-existing vertices.
        let mut g = Graph::new();
        let v: Vec<VertexId> = (0..5).map(|i| g.add_vertex(NameId(i))).collect();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)] {
            g.add_edge(v[a], v[b]).unwrap();
        }
        let before = ReachOracle::new(&g);
        let body = edge_graph(7, 8);
        replace_vertex(&mut g, v[1], &body).unwrap();
        let after = ReachOracle::new(&g);
        for &a in &[v[0], v[2], v[3], v[4]] {
            for &b in &[v[0], v[2], v[3], v[4]] {
                assert_eq!(before.reaches(a, b), after.reaches(a, b), "{a:?}->{b:?}");
            }
        }
    }

    #[test]
    fn replace_unknown_vertex_errors() {
        let mut g = edge_graph(0, 1);
        let body = edge_graph(2, 3);
        let bad = VertexId(99);
        assert_eq!(
            replace_vertex(&mut g, bad, &body).unwrap_err(),
            GraphError::UnknownVertex(bad)
        );
    }
}
