//! # wf-graph
//!
//! Graph substrate for the `wf-provenance` workspace: directed acyclic
//! graphs whose vertices carry *names*, the two-terminal discipline used by
//! workflow specifications, and the four graph operations of the paper
//! (Bao, Davidson, Milo, *Labeling Recursive Workflow Executions
//! On-the-Fly*, SIGMOD 2011, Section 2.1):
//!
//! * **series composition** `S(g1, …, gn)` ([`ops::series`]),
//! * **parallel composition** `P(g1, …, gn)` ([`ops::parallel`]),
//! * **vertex insertion** `g + (v, C)` ([`Graph::insert_vertex`]),
//! * **vertex replacement** `g[u/h]` ([`ops::replace_vertex`]).
//!
//! The crate also provides the reachability machinery every labeling scheme
//! is checked against: BFS reachability, transitive-closure bitsets,
//! topological orders, and seeded random two-terminal DAG generation.
//!
//! Everything here is deliberately self-contained — no external graph
//! library — so that the reproduction's data structures are fully auditable.
//!
//! ## Quick tour
//!
//! ```
//! use wf_graph::{Graph, NameId, ops};
//!
//! // Build the two-terminal graph  s -> m -> t.
//! let mut g = Graph::new();
//! let s = g.add_vertex(NameId(0));
//! let m = g.add_vertex(NameId(1));
//! let t = g.add_vertex(NameId(2));
//! g.add_edge(s, m).unwrap();
//! g.add_edge(m, t).unwrap();
//! assert!(g.is_two_terminal());
//! assert!(wf_graph::reach::reaches(&g, s, t));
//! ```

pub mod bitset;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ops;
pub mod random;
pub mod reach;
pub mod topo;

pub use bitset::BitSet;
pub use error::GraphError;
pub use graph::{Graph, NameId, VertexId};
