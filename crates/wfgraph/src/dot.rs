//! Graphviz (DOT) export, for debugging and for the examples.

use crate::graph::{Graph, VertexId};
use std::fmt::Write as _;

/// Render `g` in Graphviz DOT syntax. `label` maps each vertex to its
/// display string (typically resolving the `NameId` through the spec's
/// name table).
pub fn to_dot<F>(g: &Graph, graph_name: &str, mut label: F) -> String
where
    F: FnMut(VertexId) -> String,
{
    let mut s = String::new();
    let _ = writeln!(s, "digraph {graph_name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for v in g.vertices() {
        let _ = writeln!(s, "  v{} [label=\"{}\"];", v.0, label(v).replace('"', "'"));
    }
    for (u, v) in g.edges() {
        let _ = writeln!(s, "  v{} -> v{};", u.0, v.0);
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NameId;

    #[test]
    fn dot_contains_vertices_and_edges() {
        let mut g = Graph::new();
        let a = g.add_vertex(NameId(0));
        let b = g.add_vertex(NameId(1));
        g.add_edge(a, b).unwrap();
        let dot = to_dot(&g, "t", |v| format!("n{}", v.0));
        assert!(dot.contains("digraph t {"));
        assert!(dot.contains("v0 [label=\"n0\"]"));
        assert!(dot.contains("v0 -> v1;"));
    }

    #[test]
    fn dot_escapes_quotes_and_skips_dead() {
        let mut g = Graph::new();
        let a = g.add_vertex(NameId(0));
        let b = g.add_vertex(NameId(1));
        g.add_edge(a, b).unwrap();
        g.remove_vertex(b).unwrap();
        let dot = to_dot(&g, "t", |_| "say \"hi\"".to_string());
        assert!(dot.contains("say 'hi'"));
        assert!(!dot.contains("v1 [label"));
    }
}
