//! A compact, growable bit set.
//!
//! Used for transitive-closure reachability labels (the TCL scheme of
//! Section 3.2, whose label for the `i`-th inserted vertex is exactly an
//! `i−1`-bit reachability bitmap) and for visited sets in graph traversals.

use serde::{Deserialize, Serialize};

/// A growable set of bits backed by `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    /// Logical length in bits (the TCL scheme measures labels by this).
    len: usize,
}

impl BitSet {
    /// An empty bit set of logical length zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bit set with `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow the logical length to at least `len` bits (new bits are zero).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            let need = len.div_ceil(64);
            if need > self.words.len() {
                self.words.resize(need, 0);
            }
        }
    }

    /// Set bit `i` to one, growing the set if needed.
    pub fn set(&mut self, i: usize) {
        self.grow(i + 1);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i` (bits beyond the logical length read as zero).
    pub fn get(&self, i: usize) -> bool {
        match self.words.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Bitwise-or `other` into `self`, growing as needed.
    ///
    /// This is the workhorse of dynamic transitive-closure maintenance:
    /// the reach set of a newly inserted vertex is the union of the reach
    /// sets of its immediate predecessors.
    pub fn union_with(&mut self, other: &BitSet) {
        self.grow(other.len);
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::new();
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(1000);
        assert!(b.get(0));
        assert!(b.get(63));
        assert!(b.get(64));
        assert!(b.get(1000));
        assert!(!b.get(1));
        assert!(!b.get(999));
        assert!(!b.get(100_000));
        assert_eq!(b.len(), 1001);
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn union_grows_and_merges() {
        let mut a = BitSet::zeros(3);
        a.set(1);
        let mut b = BitSet::new();
        b.set(130);
        a.union_with(&b);
        assert!(a.get(1));
        assert!(a.get(130));
        assert_eq!(a.len(), 131);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = BitSet::new();
        for i in [5usize, 64, 65, 200] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![5, 64, 65, 200]);
    }

    #[test]
    fn zeros_has_no_ones() {
        let b = BitSet::zeros(129);
        assert_eq!(b.len(), 129);
        assert_eq!(b.count_ones(), 0);
        assert!(b.iter_ones().next().is_none());
    }
}
