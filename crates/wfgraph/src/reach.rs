//! Reachability primitives: BFS, reachable sets, transitive closure, and a
//! ground-truth oracle used to validate every labeling scheme.

use crate::bitset::BitSet;
use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

/// True if there is a (possibly empty) path from `u` to `v`, i.e. `u ;g v`.
///
/// Note the paper's `v ;g v'` is reflexive-transitive (paths of length
/// zero count): `reaches(g, u, u)` is `true` for any live `u`.
pub fn reaches(g: &Graph, u: VertexId, v: VertexId) -> bool {
    if !g.is_live(u) || !g.is_live(v) {
        return false;
    }
    if u == v {
        return true;
    }
    let mut visited = BitSet::zeros(g.slot_count());
    let mut queue = VecDeque::new();
    visited.set(u.idx());
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        for &y in g.out_neighbors(x) {
            if y == v {
                return true;
            }
            if !visited.get(y.idx()) {
                visited.set(y.idx());
                queue.push_back(y);
            }
        }
    }
    false
}

/// The set of vertices reachable from `u` (including `u`), as a bit set
/// over arena slots.
pub fn reachable_set(g: &Graph, u: VertexId) -> BitSet {
    let mut visited = BitSet::zeros(g.slot_count());
    if !g.is_live(u) {
        return visited;
    }
    let mut queue = VecDeque::new();
    visited.set(u.idx());
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        for &y in g.out_neighbors(x) {
            if !visited.get(y.idx()) {
                visited.set(y.idx());
                queue.push_back(y);
            }
        }
    }
    visited
}

/// Full transitive closure: `closure[v.idx()]` holds the reachable set of
/// `v` (including `v` itself). Dead slots get empty sets.
///
/// Computed in reverse topological order so each vertex unions its
/// successors' sets once — `O(V·E/64)` with bit-parallelism.
pub fn transitive_closure(g: &Graph) -> Vec<BitSet> {
    let order = crate::topo::topological_order(g).expect("transitive_closure requires a DAG");
    let mut closure: Vec<BitSet> = (0..g.slot_count()).map(|_| BitSet::new()).collect();
    for &v in order.iter().rev() {
        let mut set = BitSet::zeros(g.slot_count());
        set.set(v.idx());
        for &w in g.out_neighbors(v) {
            set.union_with(&closure[w.idx()]);
        }
        closure[v.idx()] = set;
    }
    closure
}

/// A ground-truth all-pairs reachability oracle (precomputed transitive
/// closure). Every labeling scheme in the workspace is tested against it.
#[derive(Debug, Clone)]
pub struct ReachOracle {
    closure: Vec<BitSet>,
}

impl ReachOracle {
    /// Build the oracle for `g` (must be a DAG).
    pub fn new(g: &Graph) -> Self {
        Self {
            closure: transitive_closure(g),
        }
    }

    /// True iff `u ;g v` in the graph the oracle was built from.
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        self.closure
            .get(u.idx())
            .map(|s| s.get(v.idx()))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NameId;

    fn chain(n: usize) -> (Graph, Vec<VertexId>) {
        let mut g = Graph::new();
        let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(NameId(i as u32))).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        (g, vs)
    }

    #[test]
    fn reaches_along_chain() {
        let (g, vs) = chain(5);
        assert!(reaches(&g, vs[0], vs[4]));
        assert!(reaches(&g, vs[2], vs[2]));
        assert!(!reaches(&g, vs[4], vs[0]));
        assert!(!reaches(&g, vs[3], vs[1]));
    }

    #[test]
    fn reachable_set_matches_pointwise() {
        let (g, vs) = chain(6);
        let set = reachable_set(&g, vs[2]);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(set.get(v.idx()), i >= 2, "vertex {i}");
        }
    }

    #[test]
    fn closure_and_oracle_agree_with_bfs() {
        // A small non-trivial DAG: diamond with a tail.
        let mut g = Graph::new();
        let v: Vec<VertexId> = (0..6).map(|i| g.add_vertex(NameId(i))).collect();
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5)] {
            g.add_edge(v[a], v[b]).unwrap();
        }
        let oracle = ReachOracle::new(&g);
        for &a in &v {
            for &b in &v {
                assert_eq!(oracle.reaches(a, b), reaches(&g, a, b), "{a:?}->{b:?}");
            }
        }
    }

    #[test]
    fn dead_vertices_reach_nothing() {
        let (mut g, vs) = chain(3);
        g.remove_vertex(vs[1]).unwrap();
        assert!(!reaches(&g, vs[0], vs[2]));
        assert!(!reaches(&g, vs[1], vs[2]));
        assert!(!reaches(&g, vs[0], vs[1]));
        let oracle = ReachOracle::new(&g);
        assert!(!oracle.reaches(vs[0], vs[2]));
        assert!(oracle.reaches(vs[0], vs[0]));
    }
}
