//! Error type for graph construction and mutation.

use crate::graph::VertexId;
use std::fmt;

/// Errors raised by graph construction and the operations of Section 2.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint does not exist (or has been removed by a
    /// replacement).
    UnknownVertex(VertexId),
    /// Self-loops are excluded by the paper's graph model.
    SelfLoop(VertexId),
    /// Multi-edges are excluded by the paper's graph model.
    DuplicateEdge(VertexId, VertexId),
    /// Adding the edge would create a directed cycle.
    WouldCycle(VertexId, VertexId),
    /// The operation requires a two-terminal graph (single source, single
    /// sink) but the argument is not one.
    NotTwoTerminal,
    /// A composition was attempted with zero operands.
    EmptyComposition,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown or removed vertex {v:?}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v:?} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge {u:?} -> {v:?} is not allowed")
            }
            GraphError::WouldCycle(u, v) => {
                write!(f, "edge {u:?} -> {v:?} would create a directed cycle")
            }
            GraphError::NotTwoTerminal => {
                write!(f, "operation requires a two-terminal graph")
            }
            GraphError::EmptyComposition => {
                write!(
                    f,
                    "series/parallel composition requires at least one operand"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}
