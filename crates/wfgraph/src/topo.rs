//! Topological orders over the graph arena.
//!
//! Graph *executions* (Definition 8) insert the vertices of a run in some
//! topological order — "atomic modules of a workflow are executed in some
//! topological ordering, due to data dependencies" (Section 2.4). This
//! module provides a deterministic order, a seeded-random order (to sample
//! executions of a run, Section 7.1), and an order validator.

use crate::graph::{Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A deterministic topological order of the live vertices (smallest id
/// among the ready vertices first), or `None` if the graph has a cycle.
pub fn topological_order(g: &Graph) -> Option<Vec<VertexId>> {
    // Kahn's algorithm with a sorted ready list is O(V log V + E); the
    // deterministic tie-break keeps every downstream artifact reproducible.
    let mut indeg: Vec<usize> = vec![usize::MAX; g.slot_count()];
    let mut ready: Vec<VertexId> = Vec::new();
    for v in g.vertices() {
        indeg[v.idx()] = g.in_neighbors(v).len();
        if indeg[v.idx()] == 0 {
            ready.push(v);
        }
    }
    // Max-heap behaviour via sorted-descending vector popping from the back
    // gives ascending id order.
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(g.vertex_count());
    while let Some(v) = ready.pop() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            indeg[w.idx()] -= 1;
            if indeg[w.idx()] == 0 {
                // Insert keeping descending order.
                let pos = ready.partition_point(|x| *x > w);
                ready.insert(pos, w);
            }
        }
    }
    (order.len() == g.vertex_count()).then_some(order)
}

/// A uniformly random-ish topological order (random choice among the ready
/// vertices at each step), or `None` if the graph has a cycle.
pub fn random_topological_order<R: Rng>(g: &Graph, rng: &mut R) -> Option<Vec<VertexId>> {
    let mut indeg: Vec<usize> = vec![usize::MAX; g.slot_count()];
    let mut ready: Vec<VertexId> = Vec::new();
    for v in g.vertices() {
        indeg[v.idx()] = g.in_neighbors(v).len();
        if indeg[v.idx()] == 0 {
            ready.push(v);
        }
    }
    let mut order = Vec::with_capacity(g.vertex_count());
    while !ready.is_empty() {
        let i = rng.gen_range(0..ready.len());
        let v = ready.swap_remove(i);
        order.push(v);
        for &w in g.out_neighbors(v) {
            indeg[w.idx()] -= 1;
            if indeg[w.idx()] == 0 {
                ready.push(w);
            }
        }
    }
    (order.len() == g.vertex_count()).then_some(order)
}

/// True if `order` is exactly the set of live vertices of `g`, each
/// appearing after all of its predecessors.
pub fn is_topological_order(g: &Graph, order: &[VertexId]) -> bool {
    if order.len() != g.vertex_count() {
        return false;
    }
    let mut pos: Vec<Option<usize>> = vec![None; g.slot_count()];
    for (i, &v) in order.iter().enumerate() {
        if !g.is_live(v) || pos[v.idx()].is_some() {
            return false;
        }
        pos[v.idx()] = Some(i);
    }
    g.edges().all(|(u, v)| pos[u.idx()] < pos[v.idx()])
}

/// A random permutation of the live vertices that is *not* required to be
/// topological — handy for negative tests.
pub fn random_permutation<R: Rng>(g: &Graph, rng: &mut R) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = g.vertices().collect();
    vs.shuffle(rng);
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NameId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dag() -> (Graph, Vec<VertexId>) {
        let mut g = Graph::new();
        let v: Vec<VertexId> = (0..6).map(|i| g.add_vertex(NameId(i))).collect();
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5), (5, 4)] {
            g.add_edge(v[a], v[b]).unwrap();
        }
        (g, v)
    }

    #[test]
    fn deterministic_order_is_valid_and_stable() {
        let (g, _) = dag();
        let o1 = topological_order(&g).unwrap();
        let o2 = topological_order(&g).unwrap();
        assert_eq!(o1, o2);
        assert!(is_topological_order(&g, &o1));
    }

    #[test]
    fn random_orders_are_valid_and_vary() {
        let (g, _) = dag();
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let o = random_topological_order(&g, &mut rng).unwrap();
            assert!(is_topological_order(&g, &o));
            seen.insert(o);
        }
        assert!(seen.len() > 1, "expected some variety across seeds");
    }

    #[test]
    fn cycle_detected() {
        let (mut g, v) = dag();
        g.add_edge(v[4], v[0]).unwrap();
        assert!(topological_order(&g).is_none());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_topological_order(&g, &mut rng).is_none());
    }

    #[test]
    fn validator_rejects_bad_orders() {
        let (g, v) = dag();
        // Reversed order is not topological.
        let mut rev = topological_order(&g).unwrap();
        rev.reverse();
        assert!(!is_topological_order(&g, &rev));
        // Wrong multiset.
        assert!(!is_topological_order(&g, &v[..3]));
        // Duplicate entry.
        let dup = vec![v[0]; g.vertex_count()];
        assert!(!is_topological_order(&g, &dup));
    }

    #[test]
    fn respects_tombstones() {
        let (mut g, v) = dag();
        g.remove_vertex(v[3]).unwrap();
        let o = topological_order(&g).unwrap();
        assert_eq!(o.len(), 5);
        assert!(is_topological_order(&g, &o));
        assert!(!o.contains(&v[3]));
    }
}
