//! The graph arena: directed acyclic graphs with named vertices.
//!
//! Throughout the paper, "graphs" are DAGs with no self-loops or
//! multi-edges (Section 2.1). Every vertex carries a *name* ([`NameId`],
//! interned by `wf-spec`); the reachability *labels* created by the labeling
//! schemes live outside the graph.
//!
//! Vertex ids are **stable**: vertex replacement (Definition 4) tombstones
//! the replaced vertex instead of compacting the arena, because dynamic
//! labeling requires labels — keyed by vertex id — to stay valid across the
//! whole derivation.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Identifier of a vertex within one [`Graph`] arena.
///
/// Ids are dense (`0..slot_count`) but a slot may be *dead* after a vertex
/// replacement removed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The slot index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An interned module name (the paper's Σ). The mapping from `NameId` to
/// human-readable strings is owned by `wf-spec`'s name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NameId(pub u32);

/// A directed acyclic graph with named vertices and stable vertex ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    names: Vec<NameId>,
    out: Vec<Vec<VertexId>>,
    inn: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
    live_count: usize,
    edge_count: usize,
}

impl Graph {
    /// An empty graph (the `g∅` of the execution-based problem, Def 8).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with room for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            names: Vec::with_capacity(n),
            out: Vec::with_capacity(n),
            inn: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            live_count: 0,
            edge_count: 0,
        }
    }

    /// Number of live vertices.
    pub fn vertex_count(&self) -> usize {
        self.live_count
    }

    /// Number of arena slots (live + tombstoned). Valid `VertexId`s are
    /// `0..slot_count`.
    pub fn slot_count(&self) -> usize {
        self.names.len()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// True if the slot holds a live vertex.
    #[inline]
    pub fn is_live(&self, v: VertexId) -> bool {
        self.alive.get(v.idx()).copied().unwrap_or(false)
    }

    /// Add a fresh vertex named `name`; returns its id.
    pub fn add_vertex(&mut self, name: NameId) -> VertexId {
        let id = VertexId(self.names.len() as u32);
        self.names.push(name);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.alive.push(true);
        self.live_count += 1;
        id
    }

    /// The name of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is not a live vertex.
    pub fn name(&self, v: VertexId) -> NameId {
        assert!(self.is_live(v), "name() on dead/unknown vertex {v:?}");
        self.names[v.idx()]
    }

    /// Rename vertex `v`.
    pub fn set_name(&mut self, v: VertexId, name: NameId) -> Result<(), GraphError> {
        if !self.is_live(v) {
            return Err(GraphError::UnknownVertex(v));
        }
        self.names[v.idx()] = name;
        Ok(())
    }

    /// Add the edge `(u, v)`.
    ///
    /// Rejects unknown endpoints, self-loops and duplicate edges. This does
    /// **not** check acyclicity (that would make run construction
    /// quadratic); use [`Graph::add_edge_checked`] where the caller cannot
    /// guarantee it, or validate once with [`Graph::is_acyclic`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if !self.is_live(u) {
            return Err(GraphError::UnknownVertex(u));
        }
        if !self.is_live(v) {
            return Err(GraphError::UnknownVertex(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        // Scan the smaller endpoint list for the duplicate check.
        let dup = if self.out[u.idx()].len() <= self.inn[v.idx()].len() {
            self.out[u.idx()].contains(&v)
        } else {
            self.inn[v.idx()].contains(&u)
        };
        if dup {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.out[u.idx()].push(v);
        self.inn[v.idx()].push(u);
        self.edge_count += 1;
        Ok(())
    }

    /// Add the edge `(u, v)`, additionally verifying it does not create a
    /// cycle (O(V+E) reachability check — intended for small specification
    /// graphs, not for run construction).
    pub fn add_edge_checked(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if self.is_live(u) && self.is_live(v) && crate::reach::reaches(self, v, u) {
            return Err(GraphError::WouldCycle(u, v));
        }
        self.add_edge(u, v)
    }

    /// Vertex insertion `g + (v, C)` (Definition 3): add a fresh vertex `v`
    /// named `name` together with edges `(c, v)` for every `c ∈ preds`.
    ///
    /// This is the atomic update of the execution-based dynamic labeling
    /// problem (Definition 8). It can never create a cycle because all
    /// edges point *into* the new vertex.
    pub fn insert_vertex(
        &mut self,
        name: NameId,
        preds: &[VertexId],
    ) -> Result<VertexId, GraphError> {
        for &c in preds {
            if !self.is_live(c) {
                return Err(GraphError::UnknownVertex(c));
            }
        }
        let v = self.add_vertex(name);
        for &c in preds {
            // Fresh vertex: no self-loop/duplicate possible unless preds
            // itself repeats an element.
            self.add_edge(c, v)?;
        }
        Ok(v)
    }

    /// Remove vertex `v` and all incident edges (tombstoning the slot).
    /// Used by vertex replacement (Definition 4).
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<(), GraphError> {
        if !self.is_live(v) {
            return Err(GraphError::UnknownVertex(v));
        }
        let outs = std::mem::take(&mut self.out[v.idx()]);
        for w in &outs {
            self.inn[w.idx()].retain(|x| *x != v);
        }
        let inns = std::mem::take(&mut self.inn[v.idx()]);
        for w in &inns {
            self.out[w.idx()].retain(|x| *x != v);
        }
        self.edge_count -= outs.len() + inns.len();
        self.alive[v.idx()] = false;
        self.live_count -= 1;
        Ok(())
    }

    /// Out-neighbors of `v` (successors).
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.out[v.idx()]
    }

    /// In-neighbors of `v` (predecessors).
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.inn[v.idx()]
    }

    /// Iterate over live vertex ids in id order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Iterate over all live edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out[u.idx()].iter().map(move |&v| (u, v)))
    }

    /// Live vertices with no incoming edges.
    pub fn sources(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|v| self.inn[v.idx()].is_empty())
            .collect()
    }

    /// Live vertices with no outgoing edges.
    pub fn sinks(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|v| self.out[v.idx()].is_empty())
            .collect()
    }

    /// True if the graph has exactly one source and one sink (and at least
    /// one vertex) — the paper's *two-terminal* discipline.
    pub fn is_two_terminal(&self) -> bool {
        self.live_count > 0 && self.sources().len() == 1 && self.sinks().len() == 1
    }

    /// The unique source of a two-terminal graph, `s(g)`.
    pub fn source(&self) -> Result<VertexId, GraphError> {
        let s = self.sources();
        if s.len() == 1 {
            Ok(s[0])
        } else {
            Err(GraphError::NotTwoTerminal)
        }
    }

    /// The unique sink of a two-terminal graph, `t(g)`.
    pub fn sink(&self) -> Result<VertexId, GraphError> {
        let t = self.sinks();
        if t.len() == 1 {
            Ok(t[0])
        } else {
            Err(GraphError::NotTwoTerminal)
        }
    }

    /// Full acyclicity check (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        crate::topo::topological_order(self).is_some()
    }

    /// Find the first live vertex with the given name, if any. Intended for
    /// small specification graphs (linear scan).
    pub fn find_by_name(&self, name: NameId) -> Option<VertexId> {
        self.vertices().find(|&v| self.names[v.idx()] == name)
    }

    /// All live vertices with the given name.
    pub fn all_by_name(&self, name: NameId) -> Vec<VertexId> {
        self.vertices()
            .filter(|&v| self.names[v.idx()] == name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [VertexId; 4]) {
        // s -> a -> t, s -> b -> t
        let mut g = Graph::new();
        let s = g.add_vertex(NameId(0));
        let a = g.add_vertex(NameId(1));
        let b = g.add_vertex(NameId(2));
        let t = g.add_vertex(NameId(3));
        g.add_edge(s, a).unwrap();
        g.add_edge(s, b).unwrap();
        g.add_edge(a, t).unwrap();
        g.add_edge(b, t).unwrap();
        (g, [s, a, b, t])
    }

    #[test]
    fn build_and_query_diamond() {
        let (g, [s, a, b, t]) = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_two_terminal());
        assert_eq!(g.source().unwrap(), s);
        assert_eq!(g.sink().unwrap(), t);
        assert_eq!(g.out_neighbors(s), &[a, b]);
        assert_eq!(g.in_neighbors(t), &[a, b]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let (mut g, [s, a, _, _]) = diamond();
        assert_eq!(g.add_edge(s, s), Err(GraphError::SelfLoop(s)));
        assert_eq!(g.add_edge(s, a), Err(GraphError::DuplicateEdge(s, a)));
    }

    #[test]
    fn rejects_cycle_when_checked() {
        let (mut g, [s, _, _, t]) = diamond();
        assert_eq!(g.add_edge_checked(t, s), Err(GraphError::WouldCycle(t, s)));
        // The unchecked variant would happily create the cycle; verify the
        // full check catches it.
        g.add_edge(t, s).unwrap();
        assert!(!g.is_acyclic());
    }

    #[test]
    fn insert_vertex_is_definition_3() {
        let (mut g, [_, a, b, t]) = diamond();
        let v = g.insert_vertex(NameId(9), &[a, b]).unwrap();
        assert_eq!(g.in_neighbors(v), &[a, b]);
        assert!(g.out_neighbors(v).is_empty());
        // t and v are now both sinks: no longer two-terminal.
        assert!(!g.is_two_terminal());
        assert_eq!(g.sinks(), vec![t, v]);
    }

    #[test]
    fn insert_vertex_rejects_unknown_pred() {
        let mut g = Graph::new();
        let err = g.insert_vertex(NameId(0), &[VertexId(7)]);
        assert_eq!(err, Err(GraphError::UnknownVertex(VertexId(7))));
    }

    #[test]
    fn remove_vertex_tombstones_and_unlinks() {
        let (mut g, [s, a, b, t]) = diamond();
        g.remove_vertex(a).unwrap();
        assert!(!g.is_live(a));
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(s), &[b]);
        assert_eq!(g.in_neighbors(t), &[b]);
        // Slot ids unchanged for the survivors.
        assert_eq!(g.name(t), NameId(3));
        assert_eq!(g.remove_vertex(a), Err(GraphError::UnknownVertex(a)));
    }

    #[test]
    fn single_vertex_is_two_terminal() {
        let mut g = Graph::new();
        let v = g.add_vertex(NameId(5));
        assert!(g.is_two_terminal());
        assert_eq!(g.source().unwrap(), v);
        assert_eq!(g.sink().unwrap(), v);
    }

    #[test]
    fn empty_graph_is_not_two_terminal() {
        let g = Graph::new();
        assert!(!g.is_two_terminal());
        assert!(g.source().is_err());
    }

    #[test]
    fn find_by_name() {
        let (g, [_, a, _, _]) = diamond();
        assert_eq!(g.find_by_name(NameId(1)), Some(a));
        assert_eq!(g.find_by_name(NameId(42)), None);
    }
}
