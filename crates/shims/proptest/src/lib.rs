//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this crate replaces
//! proptest's shrinking engine with straightforward seeded sampling: the
//! [`proptest!`] macro expands each property into a `#[test]` that draws
//! every argument from its [`Strategy`] for `ProptestConfig::cases`
//! deterministic cases (seeded from the test name, so failures
//! reproduce). `prop_assert*` map to plain assertions — no shrinking,
//! but counterexamples stay reproducible via the fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration (only `cases` is interpreted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test generator: seeded from the property name.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Value generators. `Range<integer>` and `Range<f64>` are strategies, as
/// is [`collection::vec`].
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl<T: Strategy> Strategy for &T {
    type Value = T::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — as in upstream proptest.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Expand properties into seeded `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for _case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // A closure so `prop_assume!` can skip the case via `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!` — plain assertion (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` — skip the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_hold(x in 3usize..9, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn vec_strategy(v in crate::collection::vec(1usize..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (1..5).contains(x)));
        }
    }
}
