//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a calibration pass,
//! then `sample_size` timed samples, and prints one JSON line
//! (`{"bench": ..., "mean_ns": ..., ...}`) so results can be harvested
//! for the perf trajectory without HTML reports.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `function_id/parameter` for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("scheme", 4096)` → `scheme/4096`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Throughput annotation: reported as derived events/s in the JSON line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level driver handed to registered bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench("", &id.id, 20, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Annotate subsequent benches with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&self.name, &id.id, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&self.name, &id.id, self.sample_size, self.throughput, f);
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_budget: usize,
}

impl Bencher {
    /// Measure `f`, called `iters × samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find an iteration count that fills ~2ms per sample
        // so timer resolution noise stays below a percent.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        self.samples.clear();
        for _ in 0..self.sample_budget {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_budget: sample_size,
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{{\"bench\":\"{full}\",\"error\":\"no samples (iter not called)\"}}");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let mut line = format!(
        "{{\"bench\":\"{full}\",\"mean_ns\":{mean:.1},\"median_ns\":{median:.1},\
         \"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{},\"iters_per_sample\":{}",
        per_iter.len(),
        b.iters_per_sample
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * 1e9 / mean;
            line.push_str(&format!(",\"elements_per_sec\":{rate:.1}"));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * 1e9 / mean;
            line.push_str(&format!(",\"bytes_per_sec\":{rate:.1}"));
        }
        None => {}
    }
    line.push('}');
    println!("{line}");
}

/// Register bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
