//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the serde shim's [`Value`] tree as JSON and parses it back.
//! Supports exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

pub use serde::Error;
pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // keep a float marker so the value parses back as F64.
                let text = format!("{x}");
                let is_integral = !text.contains(['.', 'e', 'E']);
                out.push_str(&text);
                if is_integral {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        let s: String = from_str("\"a\\nb\\u0041\"").unwrap();
        assert_eq!(s, "a\nbA");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let opt: Option<Vec<(u32, bool)>> = Some(vec![(1, true), (2, false)]);
        let json = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<Vec<(u32, bool)>>>(&json).unwrap(), opt);
    }

    #[test]
    fn floats_roundtrip() {
        for x in [0.5f64, -12.25, 1e9, 0.1] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }
}
