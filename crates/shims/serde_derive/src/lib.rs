//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The build environment has no network access, so this crate parses the
//! derive input with a hand-rolled cursor over [`proc_macro::TokenTree`]s
//! instead of `syn`/`quote`. It supports exactly the shapes the workspace
//! uses: non-generic named-field structs, tuple structs, unit-variant
//! enums, and the `#[serde(skip)]` field attribute (skipped fields must
//! implement `Default`). Anything else produces a compile error naming
//! the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<String> },
}

enum Fields {
    /// `(name, skip)` pairs in declaration order.
    Named(Vec<(String, bool)>),
    /// Tuple struct arity.
    Tuple(usize),
    Unit,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`#` + bracket group) if present; returns whether
/// the attribute was `#[serde(skip)]`.
fn eat_attr(tokens: &[TokenTree], pos: &mut usize) -> Option<bool> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return None,
    }
    let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
        return None;
    };
    if g.delimiter() != Delimiter::Bracket {
        return None;
    }
    *pos += 2;
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let is_serde = matches!(&inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    let mut skip = false;
    if is_serde {
        if let Some(TokenTree::Group(args)) = inner.get(1) {
            for t in args.stream() {
                if let TokenTree::Ident(i) = t {
                    match i.to_string().as_str() {
                        "skip" => skip = true,
                        other => panic!(
                            "serde shim derive: unsupported serde attribute `{other}` \
                             (only `skip` is implemented)"
                        ),
                    }
                }
            }
        }
    }
    Some(skip)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …) if present.
fn eat_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    while eat_attr(&tokens, &mut pos).is_some() {}
    eat_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected struct/enum, got {other:?}"
            ))
        }
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g.stream())),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!(
                "serde shim derive: unsupported struct body for `{name}`: {other:?}"
            )),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                variants: parse_unit_variants(&name, g.stream())?,
                name,
            }),
            other => Err(format!(
                "serde shim derive: unsupported enum body for `{name}`: {other:?}"
            )),
        },
        other => Err(format!(
            "serde shim derive: expected struct or enum, found `{other}`"
        )),
    }
}

/// Parse `field: Type` declarations, tracking `#[serde(skip)]`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut skip = false;
        while let Some(s) = eat_attr(&tokens, &mut pos) {
            skip |= s;
        }
        if pos >= tokens.len() {
            break;
        }
        eat_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, got {other:?}"
                ))
            }
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(pos) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        pos += 1; // past the comma (or end)
        fields.push((name, skip));
    }
    Ok(fields)
}

/// Count top-level comma-separated fields of a tuple struct.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parse enum variants; only unit variants are supported.
fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        while eat_attr(&tokens, &mut pos).is_some() {}
        if pos >= tokens.len() {
            break;
        }
        let v = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant of `{enum_name}`, got {other:?}"
                ))
            }
        };
        pos += 1;
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: data-carrying variant `{enum_name}::{v}` is not supported"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive: discriminant on `{enum_name}::{v}` is not supported"
                ))
            }
            other => {
                return Err(format!(
                    "serde shim derive: unexpected token after `{enum_name}::{v}`: {other:?}"
                ))
            }
        }
        variants.push(v);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut s = String::from(
                        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                         ::std::vec::Vec::new();\n",
                    );
                    for (f, skip) in fs {
                        if *skip {
                            continue;
                        }
                        s.push_str(&format!(
                            "__m.push((::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_value(&self.{f})));\n"
                        ));
                    }
                    s.push_str("::serde::Value::Map(__m)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Str(::std::string::String::from(match self {{ {} }}))\n\
                 }}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut inits = Vec::new();
                    for (f, skip) in fs {
                        if *skip {
                            inits.push(format!("{f}: ::std::default::Default::default(),"));
                        } else {
                            inits.push(format!(
                                "{f}: match __v.get({f:?}) {{\n\
                                 ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::from_value(__x)?,\n\
                                 ::std::option::Option::None => return \
                                 ::std::result::Result::Err(::serde::Error::new(\
                                 concat!(\"missing field `\", {f:?}, \"` in {name}\"))),\n}},"
                            ));
                        }
                    }
                    format!(
                        "if __v.as_map().is_none() {{\n\
                         return ::std::result::Result::Err(::serde::Error::new(\
                         \"expected map for {name}\"));\n}}\n\
                         ::std::result::Result::Ok({name} {{\n{}\n}})",
                        inits.join("\n")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    format!(
                        "let __s = __v.as_seq().ok_or_else(|| \
                         ::serde::Error::new(\"expected sequence for {name}\"))?;\n\
                         if __s.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::new(\
                         \"wrong arity for {name}\"));\n}}\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some({v:?}) => ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v.as_str() {{\n{}\n_ => ::std::result::Result::Err(\
                 ::serde::Error::new(\"unknown variant for {name}\")),\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    }
}
