//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *exact* API subset it uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`].
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the reproduction needs
//! (sequences differ from upstream `rand`, but every consumer in this
//! workspace derives its expectations from the same generator).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // wrapping arithmetic: signed bounds sign-extend when
                // cast, so plain subtraction would underflow for lo < 0.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers (`choose`, `shuffle`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_do_not_underflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let a = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&a));
            let b = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&b));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
