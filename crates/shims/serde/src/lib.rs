//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal serde: serialization goes through an owned [`Value`] tree
//! (the data model), and `#[derive(Serialize, Deserialize)]` is provided
//! by the sibling `serde_derive` proc-macro crate for the shapes this
//! workspace uses (named structs, tuple structs, unit-variant enums,
//! `#[serde(skip)]` fields). `serde_json` renders [`Value`] as JSON.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: an owned JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `Option::None`.
    Null,
    /// Booleans.
    Bool(bool),
    /// Unsigned integers.
    U64(u64),
    /// Signed integers (negative values only; non-negatives use `U64`).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Strings (also unit enum variants).
    Str(String),
    /// Sequences (slices, vectors, tuples, multi-field tuple structs).
    Seq(Vec<Value>),
    /// Maps with string keys (named-field structs), insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries of a `Map`, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements of a `Seq`, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in a `Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value-tree representation.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::new("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::new("expected tuple sequence"))?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(Error::new("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K, V> Serialize for HashMap<K, V>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Deterministic order so serialized output is stable.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::new("expected map entry sequence"))?
            .iter()
            .map(<(K, V)>::from_value)
            .collect()
    }
}
