//! # wf-run
//!
//! Workflow runs and the two update models of the dynamic labeling
//! problems (Section 2.4):
//!
//! * a **graph derivation** (Definition 9) is a sequence of vertex
//!   replacements `g0 ⇒ g1 ⇒ … ⇒ g ∈ L(G)` — see [`Derivation`] and the
//!   deterministic replayer [`RunBuilder`];
//! * a **graph execution** (Definition 8) is a sequence of vertex
//!   insertions in a topological order of the final run — see
//!   [`Execution`], derived from a completed run.
//!
//! [`RunGenerator`] samples seeded random derivations with a target run
//! size, "repeating loops, forks and recursion a random number of times"
//! exactly as the evaluation's workload generator does (§7.1).

pub mod builder;
pub mod derivation;
pub mod execution;
pub mod generator;
pub mod parse_tree;

pub use builder::{AppliedStep, RunBuilder};
pub use derivation::{Derivation, DerivationStep};
pub use execution::{ExecEvent, Execution};
pub use generator::{min_expansions, RunGenerator};
pub use parse_tree::CanonicalParseTree;
