//! The canonical parse tree (Section 4.2): "the derivation of a graph
//! `g ∈ L(G)` can be naturally captured by a canonical parse tree whose
//! nodes represent nested subgraphs and edges represent composite
//! vertices created during the graph derivation."
//!
//! The explicit parse tree DRL labels with (in `wf-drl`) refines this
//! one by adding the special L/F/R nodes; the canonical form is useful
//! for inspecting derivations and in tests relating the two: the
//! canonical tree's depth is unbounded under recursion (which is exactly
//! why the explicit tree flattens chains with R nodes, Lemma 4.1).

use crate::builder::{RunBuilder, RunError};
use crate::derivation::Derivation;
use serde::{Deserialize, Serialize};
use wf_graph::VertexId;
use wf_spec::{GraphId, Specification};

/// One node of the canonical parse tree: a nested subgraph instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CanonicalNode {
    /// The specification graph this instance copies (`g0` for the root;
    /// for loop/fork steps this is the *composed* body, recorded as the
    /// single body graph plus `copies`).
    pub graph: GraphId,
    /// Copies of the body (1 unless the replaced vertex was a loop or
    /// fork vertex — then the node represents `S(h,…,h)` / `P(h,…,h)`).
    pub copies: u32,
    /// Parent node; `None` for the root.
    pub parent: Option<usize>,
    /// The composite run vertex annotated on the edge from the parent
    /// (the `u` replaced by this subgraph); `None` for the root.
    pub replaced: Option<VertexId>,
    /// Children in derivation order.
    pub children: Vec<usize>,
    /// Depth (root = 0).
    pub depth: usize,
}

/// The canonical parse tree of one derivation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CanonicalParseTree {
    nodes: Vec<CanonicalNode>,
}

impl CanonicalParseTree {
    /// Build the tree by replaying a derivation.
    pub fn build(spec: &Specification, derivation: &Derivation) -> Result<Self, RunError> {
        let mut builder = RunBuilder::new(spec);
        let mut nodes = vec![CanonicalNode {
            graph: GraphId::START,
            copies: 1,
            parent: None,
            replaced: None,
            children: Vec::new(),
            depth: 0,
        }];
        // Which tree node each run vertex belongs to.
        let mut home: Vec<usize> = vec![0; builder.graph().slot_count()];
        for step in derivation.steps() {
            let u = step.target;
            let parent = *home.get(u.idx()).ok_or(RunError::UnknownTarget(u))?;
            let applied = builder.apply(step)?;
            let id = nodes.len();
            let depth = nodes[parent].depth + 1;
            nodes.push(CanonicalNode {
                graph: step.production.body,
                copies: step.production.copies,
                parent: Some(parent),
                replaced: Some(u),
                children: Vec::new(),
                depth,
            });
            nodes[parent].children.push(id);
            home.resize(builder.graph().slot_count(), 0);
            for map in &applied.copies {
                for new in map.iter().flatten() {
                    home[new.idx()] = id;
                }
            }
        }
        Ok(Self { nodes })
    }

    /// All nodes, root first (index 0).
    pub fn nodes(&self) -> &[CanonicalNode] {
        &self.nodes
    }

    /// Node count (= derivation steps + 1).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never empty (the root always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maximum depth — unbounded under recursion, which motivates the
    /// explicit parse tree's R-node flattening.
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Render as an indented outline (for debugging / examples).
    pub fn outline(&self, spec: &Specification) -> String {
        let mut out = String::new();
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i];
            let name = match spec.head(n.graph) {
                None => "g0".to_string(),
                Some(h) => format!(
                    "{} := {}{}",
                    spec.name_str(h),
                    spec.graph_label(n.graph),
                    if n.copies > 1 {
                        format!(" ×{}", n.copies)
                    } else {
                        String::new()
                    }
                ),
            };
            out.push_str(&"  ".repeat(n.depth));
            out.push_str(&name);
            out.push('\n');
            for &c in n.children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_count_tracks_steps() {
        let spec = wf_spec::corpus::running_example();
        let mut rng = StdRng::seed_from_u64(12);
        let run = RunGenerator::new(&spec)
            .target_size(80)
            .generate_run(&mut rng);
        let tree = CanonicalParseTree::build(&spec, &run.derivation).unwrap();
        assert_eq!(tree.len(), run.derivation.len() + 1);
        // Every non-root node has a consistent parent/child linkage.
        for (i, n) in tree.nodes().iter().enumerate().skip(1) {
            let p = n.parent.unwrap();
            assert!(tree.nodes()[p].children.contains(&i));
            assert_eq!(n.depth, tree.nodes()[p].depth + 1);
        }
        let outline = tree.outline(&spec);
        assert!(outline.starts_with("g0\n"));
    }

    #[test]
    fn canonical_depth_grows_with_recursion_unlike_explicit() {
        // Under the running example's A→C→A recursion, the canonical
        // tree's depth scales with the recursion depth, while the
        // explicit tree (Lemma 4.1) stays ≤ 2|Σ\Δ|.
        let spec = wf_spec::corpus::running_example();
        let mut rng = StdRng::seed_from_u64(5);
        let big = RunGenerator::new(&spec)
            .target_size(2500)
            .generate_run(&mut rng);
        let canonical = CanonicalParseTree::build(&spec, &big.derivation).unwrap();
        let bound = 2 * spec.composite_count();
        assert!(
            canonical.max_depth() > bound,
            "canonical depth {} should exceed the explicit bound {bound}",
            canonical.max_depth()
        );
    }

    #[test]
    fn invalid_derivation_rejected() {
        let spec = wf_spec::corpus::running_example();
        let mut bad = Derivation::new();
        let l = spec.name_id("L").unwrap();
        bad.push(crate::DerivationStep {
            target: wf_graph::VertexId(999),
            production: wf_spec::grammar::Production::plain(spec.implementations(l)[0]),
        });
        assert!(CanonicalParseTree::build(&spec, &bad).is_err());
    }
}
