//! Deterministic application of derivation steps: the `⇒G` relation.

use crate::derivation::DerivationStep;
use std::fmt;
use wf_graph::ops::{copy_into, SlotMap};
use wf_graph::{Graph, GraphError, VertexId};
use wf_spec::{GraphId, NameClass, Specification};

/// Errors raised while applying derivation steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The target vertex does not exist (or was already replaced).
    UnknownTarget(VertexId),
    /// The target vertex is atomic — only composite vertices derive.
    AtomicTarget(VertexId),
    /// The production's head does not match the target's name, or the
    /// copy count is invalid for the head's class.
    InvalidProduction,
    /// Underlying graph mutation failed (should not happen for valid
    /// specs; surfaced for debuggability).
    Graph(GraphError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownTarget(v) => write!(f, "unknown derivation target {v:?}"),
            RunError::AtomicTarget(v) => write!(f, "derivation target {v:?} is atomic"),
            RunError::InvalidProduction => write!(f, "production does not fit the target"),
            RunError::Graph(e) => write!(f, "graph error during derivation: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Copy only the vertices (ids + names) of `src` into `dst`, preserving
/// the exact id allocation of `copy_into`.
fn copy_vertices_only(dst: &mut Graph, src: &Graph) -> SlotMap {
    let mut map: SlotMap = vec![None; src.slot_count()];
    for v in src.vertices() {
        map[v.idx()] = Some(dst.add_vertex(src.name(v)));
    }
    map
}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

/// The result of applying one step: which run vertices instantiated which
/// specification vertices, copy by copy.
#[derive(Debug, Clone)]
pub struct AppliedStep {
    /// The replaced composite vertex.
    pub target: VertexId,
    /// The step that was applied.
    pub step: DerivationStep,
    /// The class of the production head (decides series/parallel wiring).
    pub head_class: NameClass,
    /// Per body copy, the slot map from the body graph to new run ids.
    pub copies: Vec<SlotMap>,
}

/// Builds a run by applying derivation steps to the start graph, keeping
/// per-vertex provenance (which spec graph/vertex each run vertex
/// instantiates — the information workflow systems record in their
/// execution logs, §5.3).
pub struct RunBuilder<'s> {
    spec: &'s Specification,
    graph: Graph,
    /// Provenance per run slot: the spec graph and spec vertex this run
    /// vertex instantiates.
    origin: Vec<(GraphId, VertexId)>,
    composite_left: usize,
    /// When false, vertices are allocated (ids, names, provenance) but
    /// no edges are maintained — the *label-only* mode used to measure
    /// pure labeling cost, since workflow engines maintain the run graph
    /// themselves (§7.2 compares labeling time against the ~6 µs graph
    /// update as separate quantities).
    track_edges: bool,
}

impl<'s> RunBuilder<'s> {
    /// Start from a fresh instance of `g0`.
    pub fn new(spec: &'s Specification) -> Self {
        Self::with_tracking(spec, true)
    }

    /// Label-only variant: identical id allocation and provenance, but
    /// no edges are stored (the graph accessor returns an edgeless
    /// arena). Derivation targets and slot maps are unaffected because
    /// id allocation never depends on edges.
    pub fn new_untracked(spec: &'s Specification) -> Self {
        Self::with_tracking(spec, false)
    }

    fn with_tracking(spec: &'s Specification, track_edges: bool) -> Self {
        let g0 = spec.start_graph();
        let mut graph = Graph::with_capacity(g0.vertex_count());
        let map = if track_edges {
            copy_into(&mut graph, g0)
        } else {
            copy_vertices_only(&mut graph, g0)
        };
        let mut origin = vec![(GraphId::START, VertexId(0)); graph.slot_count()];
        let mut composite_left = 0;
        for sv in g0.vertices() {
            let rv = map[sv.idx()].unwrap();
            origin[rv.idx()] = (GraphId::START, sv);
            if spec.is_composite(g0.name(sv)) {
                composite_left += 1;
            }
        }
        Self {
            spec,
            graph,
            origin,
            composite_left,
            track_edges,
        }
    }

    /// The specification being derived from.
    pub fn spec(&self) -> &'s Specification {
        self.spec
    }

    /// The current (possibly intermediate) graph `g_i`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Provenance of a run vertex: `(spec graph, spec vertex)`.
    pub fn origin(&self, v: VertexId) -> (GraphId, VertexId) {
        self.origin[v.idx()]
    }

    /// Number of composite vertices still present.
    pub fn composite_remaining(&self) -> usize {
        self.composite_left
    }

    /// True when the run consists only of atomic vertices, i.e. the graph
    /// is a member of `L(G)` (Definition 7).
    pub fn is_complete(&self) -> bool {
        self.composite_left == 0
    }

    /// The composite vertices currently present, in id order.
    pub fn composite_vertices(&self) -> Vec<VertexId> {
        self.graph
            .vertices()
            .filter(|&v| self.spec.is_composite(self.graph.name(v)))
            .collect()
    }

    /// Apply one derivation step `g[u/h]` (with the loop/fork replication
    /// of Definition 6 folded in) and report the new instances.
    pub fn apply(&mut self, step: &DerivationStep) -> Result<AppliedStep, RunError> {
        let u = step.target;
        if !self.graph.is_live(u) {
            return Err(RunError::UnknownTarget(u));
        }
        let name = self.graph.name(u);
        if self.spec.is_atomic(name) {
            return Err(RunError::AtomicTarget(u));
        }
        let head = self
            .spec
            .head(step.production.body)
            .ok_or(RunError::InvalidProduction)?;
        if head != name {
            return Err(RunError::InvalidProduction);
        }
        let head_class = self.spec.class(head);
        let copies_n = step.production.copies as usize;
        let valid_count = match head_class {
            NameClass::Loop | NameClass::Fork => copies_n >= 1,
            NameClass::Composite => copies_n == 1,
            NameClass::Atomic => false,
        };
        if !valid_count {
            return Err(RunError::InvalidProduction);
        }

        let body = self.spec.graph(step.production.body);
        let preds: Vec<VertexId> = self.graph.in_neighbors(u).to_vec();
        let succs: Vec<VertexId> = self.graph.out_neighbors(u).to_vec();
        self.graph.remove_vertex(u)?;
        self.composite_left -= 1;

        // Instantiate the copies and record provenance.
        let mut copies: Vec<SlotMap> = Vec::with_capacity(copies_n);
        for _ in 0..copies_n {
            let map = if self.track_edges {
                copy_into(&mut self.graph, body)
            } else {
                copy_vertices_only(&mut self.graph, body)
            };
            self.origin
                .resize(self.graph.slot_count(), (GraphId::START, VertexId(0)));
            for sv in body.vertices() {
                let rv = map[sv.idx()].unwrap();
                self.origin[rv.idx()] = (step.production.body, sv);
                if self.spec.is_composite(body.name(sv)) {
                    self.composite_left += 1;
                }
            }
            copies.push(map);
        }

        // Wire the copies into the host graph (Definition 4 applied to
        // h, S(h,…,h) or P(h,…,h)).
        if !self.track_edges {
            return Ok(AppliedStep {
                target: u,
                step: *step,
                head_class,
                copies,
            });
        }
        let s_slot = body.source().expect("spec graphs are two-terminal");
        let t_slot = body.sink().expect("spec graphs are two-terminal");
        match head_class {
            NameClass::Loop => {
                // Series: preds → s(copy₀); t(copyᵢ) → s(copyᵢ₊₁);
                // t(copy_last) → succs.
                let first_s = copies[0][s_slot.idx()].unwrap();
                for &p in &preds {
                    self.graph.add_edge(p, first_s)?;
                }
                for w in copies.windows(2) {
                    let t_prev = w[0][t_slot.idx()].unwrap();
                    let s_next = w[1][s_slot.idx()].unwrap();
                    self.graph.add_edge(t_prev, s_next)?;
                }
                let last_t = copies[copies_n - 1][t_slot.idx()].unwrap();
                for &sv in &succs {
                    self.graph.add_edge(last_t, sv)?;
                }
            }
            _ => {
                // Parallel (forks) and the single-copy plain case: every
                // copy's source/sink attaches to the host.
                for map in &copies {
                    let s = map[s_slot.idx()].unwrap();
                    let t = map[t_slot.idx()].unwrap();
                    for &p in &preds {
                        self.graph.add_edge(p, s)?;
                    }
                    for &sv in &succs {
                        self.graph.add_edge(t, sv)?;
                    }
                }
            }
        }
        Ok(AppliedStep {
            target: u,
            step: *step,
            head_class,
            copies,
        })
    }

    /// Consume the builder, returning the graph and the provenance table.
    pub fn into_parts(self) -> (Graph, Vec<(GraphId, VertexId)>) {
        (self.graph, self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_spec::corpus;
    use wf_spec::grammar::Production;

    fn find_composite(b: &RunBuilder<'_>, name: &str) -> VertexId {
        let id = b.spec().name_id(name).unwrap();
        b.graph().find_by_name(id).expect("composite present")
    }

    /// Derive the paper's Figure-3 run: L repeated twice in series, F
    /// twice in parallel (one branch expanded through the recursion, the
    /// other left as in the figure's elided copies).
    #[test]
    fn figure_3_run_shape() {
        let spec = corpus::running_example();
        let mut b = RunBuilder::new(&spec);
        let l_impl = spec.implementations(spec.name_id("L").unwrap())[0];
        let f_impl = spec.implementations(spec.name_id("F").unwrap())[0];
        let a_rec = spec.implementations(spec.name_id("A").unwrap())[0];
        let a_base = spec.implementations(spec.name_id("A").unwrap())[1];
        let b_impl = spec.implementations(spec.name_id("B").unwrap())[0];
        let c_impl = spec.implementations(spec.name_id("C").unwrap())[0];

        // u1 := S(h1, h1)
        let u1 = find_composite(&b, "L");
        b.apply(&DerivationStep {
            target: u1,
            production: Production::replicated(l_impl, 2),
        })
        .unwrap();
        // First F := P(h2, h2)
        let u2 = find_composite(&b, "F");
        b.apply(&DerivationStep {
            target: u2,
            production: Production::replicated(f_impl, 2),
        })
        .unwrap();
        // Expand one A through the recursion: A := h3; B := h5; C := h6;
        // inner A := h4.
        let u3 = find_composite(&b, "A");
        b.apply(&DerivationStep {
            target: u3,
            production: Production::plain(a_rec),
        })
        .unwrap();
        let u4 = find_composite(&b, "B");
        b.apply(&DerivationStep {
            target: u4,
            production: Production::plain(b_impl),
        })
        .unwrap();
        let u5 = find_composite(&b, "C");
        b.apply(&DerivationStep {
            target: u5,
            production: Production::plain(c_impl),
        })
        .unwrap();
        let u6 = find_composite(&b, "A");
        b.apply(&DerivationStep {
            target: u6,
            production: Production::plain(a_base),
        })
        .unwrap();
        // Remaining: the second fork branch's A and the second loop
        // copy's F.
        let u7 = find_composite(&b, "A");
        b.apply(&DerivationStep {
            target: u7,
            production: Production::plain(a_base),
        })
        .unwrap();
        let u8 = find_composite(&b, "F");
        b.apply(&DerivationStep {
            target: u8,
            production: Production::replicated(f_impl, 1),
        })
        .unwrap();
        let u9 = find_composite(&b, "A");
        b.apply(&DerivationStep {
            target: u9,
            production: Production::plain(a_base),
        })
        .unwrap();

        assert!(b.is_complete());
        let g = b.graph();
        assert!(g.is_two_terminal());
        assert!(g.is_acyclic());
        // Figure 3 reachability spot checks via names: the two loop
        // copies are ordered; fork branches are parallel.
        let s0 = g.find_by_name(spec.name_id("s0").unwrap()).unwrap();
        let t0 = g.find_by_name(spec.name_id("t0").unwrap()).unwrap();
        assert!(wf_graph::reach::reaches(g, s0, t0));
        let s1s = g.all_by_name(spec.name_id("s1").unwrap());
        assert_eq!(s1s.len(), 2, "two loop iterations");
        let (first, second) = (s1s[0].min(s1s[1]), s1s[0].max(s1s[1]));
        assert!(
            wf_graph::reach::reaches(g, first, second)
                || wf_graph::reach::reaches(g, second, first),
            "loop copies are series-ordered"
        );
        let s2s = g.all_by_name(spec.name_id("s2").unwrap());
        assert_eq!(s2s.len(), 3, "two fork branches + one singleton fork");
    }

    #[test]
    fn provenance_is_tracked() {
        let spec = corpus::running_example();
        let mut b = RunBuilder::new(&spec);
        let u1 = find_composite(&b, "L");
        let l_impl = spec.implementations(spec.name_id("L").unwrap())[0];
        let applied = b
            .apply(&DerivationStep {
                target: u1,
                production: Production::replicated(l_impl, 3),
            })
            .unwrap();
        assert_eq!(applied.copies.len(), 3);
        for map in &applied.copies {
            for sv in spec.graph(l_impl).vertices() {
                let rv = map[sv.idx()].unwrap();
                assert_eq!(b.origin(rv), (l_impl, sv));
            }
        }
        // Start-graph vertices keep START provenance.
        let s0 = b.graph().find_by_name(spec.name_id("s0").unwrap()).unwrap();
        assert_eq!(b.origin(s0).0, GraphId::START);
    }

    #[test]
    fn apply_rejects_bad_steps() {
        let spec = corpus::running_example();
        let mut b = RunBuilder::new(&spec);
        let l = find_composite(&b, "L");
        let f_impl = spec.implementations(spec.name_id("F").unwrap())[0];
        // Wrong head.
        assert_eq!(
            b.apply(&DerivationStep {
                target: l,
                production: Production::plain(f_impl),
            })
            .unwrap_err(),
            RunError::InvalidProduction
        );
        // Atomic target.
        let s0 = b.graph().find_by_name(spec.name_id("s0").unwrap()).unwrap();
        let l_impl = spec.implementations(spec.name_id("L").unwrap())[0];
        assert_eq!(
            b.apply(&DerivationStep {
                target: s0,
                production: Production::plain(l_impl),
            })
            .unwrap_err(),
            RunError::AtomicTarget(s0)
        );
        // Zero copies.
        assert_eq!(
            b.apply(&DerivationStep {
                target: l,
                production: Production::replicated(l_impl, 0),
            })
            .unwrap_err(),
            RunError::InvalidProduction
        );
        // Multi-copy on a plain composite.
        let mut b2 = RunBuilder::new(&spec);
        let l2 = find_composite(&b2, "L");
        b2.apply(&DerivationStep {
            target: l2,
            production: Production::replicated(l_impl, 1),
        })
        .unwrap();
        let f = find_composite(&b2, "F");
        b2.apply(&DerivationStep {
            target: f,
            production: Production::replicated(f_impl, 2),
        })
        .unwrap();
        let a = find_composite(&b2, "A");
        let a_rec = spec.implementations(spec.name_id("A").unwrap())[0];
        assert_eq!(
            b2.apply(&DerivationStep {
                target: a,
                production: Production::replicated(a_rec, 2),
            })
            .unwrap_err(),
            RunError::InvalidProduction
        );
        // Unknown target after replacement.
        let mut b3 = RunBuilder::new(&spec);
        let l3 = find_composite(&b3, "L");
        b3.apply(&DerivationStep {
            target: l3,
            production: Production::replicated(l_impl, 1),
        })
        .unwrap();
        assert_eq!(
            b3.apply(&DerivationStep {
                target: l3,
                production: Production::replicated(l_impl, 1),
            })
            .unwrap_err(),
            RunError::UnknownTarget(l3)
        );
    }

    #[test]
    fn intermediate_graphs_preserve_survivor_reachability() {
        // Remark 1: replacements preserve reachability between existing
        // vertices — check across a multi-step derivation.
        let spec = corpus::running_example();
        let mut b = RunBuilder::new(&spec);
        let l_impl = spec.implementations(spec.name_id("L").unwrap())[0];
        let f_impl = spec.implementations(spec.name_id("F").unwrap())[0];
        let u1 = find_composite(&b, "L");
        b.apply(&DerivationStep {
            target: u1,
            production: Production::replicated(l_impl, 2),
        })
        .unwrap();
        let before = wf_graph::reach::ReachOracle::new(b.graph());
        let survivors: Vec<VertexId> = b.graph().vertices().collect();
        let f = find_composite(&b, "F");
        b.apply(&DerivationStep {
            target: f,
            production: Production::replicated(f_impl, 3),
        })
        .unwrap();
        let after = wf_graph::reach::ReachOracle::new(b.graph());
        for &a in survivors.iter().filter(|&&v| v != f) {
            for &c in survivors.iter().filter(|&&v| v != f) {
                assert_eq!(before.reaches(a, c), after.reaches(a, c));
            }
        }
    }
}
