//! Seeded random run generation with a target size (§7.1's workload
//! generator: "we simulate the execution by repeating loops, forks and
//! recursion a random number of times" while "varying the size of runs
//! from 1K to 32K").

use crate::builder::RunBuilder;
use crate::derivation::{Derivation, DerivationStep};
use rand::Rng;
use wf_graph::{Graph, VertexId};
use wf_spec::grammar::Production;
use wf_spec::{GraphId, NameClass, Specification};

/// Minimum completed-expansion size per name (indexed by `NameId`):
/// atomic names count 1; a composite name's value is the cheapest body it
/// can fully derive to (`u64::MAX` marks unproductive names that can
/// never finish deriving — a specification bug the generator rejects).
pub fn min_expansions(spec: &Specification) -> Vec<u64> {
    let n = spec.names().len();
    let mut min: Vec<u64> = (0..n)
        .map(|i| {
            if spec.is_atomic(wf_graph::NameId(i as u32)) {
                1
            } else {
                u64::MAX
            }
        })
        .collect();
    // Fixpoint: tiny alphabets converge in ≤ |Σ\Δ| rounds.
    loop {
        let mut changed = false;
        for (head, gid) in spec.impl_pairs() {
            let g = spec.graph(gid);
            let mut total: u64 = 0;
            for v in g.vertices() {
                let m = min[g.name(v).0 as usize];
                total = total.saturating_add(m);
            }
            if total < min[head.0 as usize] {
                min[head.0 as usize] = total;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    min
}

/// A generated run: the derivation plus its fully derived graph and
/// per-vertex provenance.
pub struct GeneratedRun {
    /// The recorded derivation (replayable via [`Derivation::replay`]).
    pub derivation: Derivation,
    /// The final run graph `g ∈ L(G)`.
    pub graph: Graph,
    /// Provenance per run slot (`(spec graph, spec vertex)`).
    pub origin: Vec<(GraphId, VertexId)>,
}

/// Size-targeted random derivation generator.
///
/// The generator tracks, at every moment, the *committed minimum* final
/// size (atomic vertices so far plus the cheapest completion of every
/// pending composite) and spends the remaining slack on random choices:
/// extra loop/fork copies and recursive implementations. Final sizes land
/// within roughly ±20 % of the target.
pub struct RunGenerator<'s> {
    spec: &'s Specification,
    target_size: usize,
    max_copies: u32,
}

impl<'s> RunGenerator<'s> {
    /// A generator with default target (1000 vertices) and loop/fork copy
    /// cap (256, "hundreds of times", §5.1).
    pub fn new(spec: &'s Specification) -> Self {
        Self {
            spec,
            target_size: 1000,
            max_copies: 256,
        }
    }

    /// Set the target run size (number of atomic vertices).
    pub fn target_size(mut self, n: usize) -> Self {
        self.target_size = n;
        self
    }

    /// Cap the number of copies per loop/fork expansion.
    pub fn max_copies(mut self, c: u32) -> Self {
        assert!(c >= 1);
        self.max_copies = c;
        self
    }

    /// Generate a derivation (steps only).
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Derivation {
        self.generate_run(rng).derivation
    }

    /// Generate a derivation together with its final graph and
    /// provenance (avoids a replay when the caller needs all three).
    pub fn generate_run<R: Rng>(&self, rng: &mut R) -> GeneratedRun {
        let min = min_expansions(self.spec);
        let mut builder = RunBuilder::new(self.spec);
        let mut derivation = Derivation::new();

        // Pending composite vertices, kept as a stack so composites are
        // expanded depth-first in dataflow order. The final graph does
        // not depend on expansion order (derivations are confluent), but
        // this order makes the recorded derivation correspond exactly to
        // the deterministic topological execution of the run — both
        // labelers then produce identical labels, the §5.3 property the
        // integration tests verify. Instance composites are pushed in
        // reverse body-topological order so the dataflow-first one pops
        // first.
        let mut pending: Vec<VertexId> = {
            let g0 = self.spec.start_graph();
            let mut order = wf_graph::topo::topological_order(g0).expect("specs are DAGs");
            order.retain(|&sv| self.spec.is_composite(g0.name(sv)));
            order.reverse();
            // g0's slots map to identical run ids in RunBuilder::new's
            // fresh copy, but resolve through origin for robustness.
            let by_origin: std::collections::HashMap<VertexId, VertexId> = builder
                .composite_vertices()
                .into_iter()
                .map(|rv| (builder.origin(rv).1, rv))
                .collect();
            order.into_iter().map(|sv| by_origin[&sv]).collect()
        };
        let g0 = self.spec.start_graph();
        let mut atomic_count: u64 = g0
            .vertices()
            .filter(|&v| self.spec.is_atomic(g0.name(v)))
            .count() as u64;
        let mut pending_min: u64 = pending
            .iter()
            .map(|&v| {
                let m = min[builder.graph().name(v).0 as usize];
                assert_ne!(m, u64::MAX, "unproductive composite in start graph");
                m
            })
            .sum();

        while let Some(u) = pending.pop() {
            let name = builder.graph().name(u);
            let name_min = min[name.0 as usize];
            assert_ne!(
                name_min,
                u64::MAX,
                "unproductive composite {:?}",
                self.spec.name_str(name)
            );
            let slack = (self.target_size as u64).saturating_sub(atomic_count + pending_min);
            let impls = self.spec.implementations(name);
            let production = match self.spec.class(name) {
                NameClass::Loop | NameClass::Fork => {
                    let body = choose_impl(self.spec, impls, &min, name_min, slack, rng);
                    let body_min = body_min(self.spec, body, &min);
                    // First copy is already budgeted at name_min; extras
                    // spend slack.
                    let max_extra = (slack / body_min.max(1)).min(self.max_copies as u64 - 1);
                    let extra = if max_extra == 0 {
                        0
                    } else {
                        rng.gen_range(0..=max_extra)
                    };
                    Production::replicated(body, extra as u32 + 1)
                }
                NameClass::Composite => {
                    let body = choose_impl(self.spec, impls, &min, name_min, slack, rng);
                    Production::plain(body)
                }
                NameClass::Atomic => unreachable!("pending holds composites only"),
            };
            // Budget update: this composite's minimum is replaced by the
            // actual commitment of the chosen production.
            pending_min -= name_min;
            let step = DerivationStep {
                target: u,
                production,
            };
            let applied = builder.apply(&step).expect("generated step is valid");
            derivation.push(step);
            let body_graph = self.spec.graph(production.body);
            let mut body_order =
                wf_graph::topo::topological_order(body_graph).expect("specs are DAGs");
            body_order.retain(|&sv| self.spec.is_composite(body_graph.name(sv)));
            for map in &applied.copies {
                for sv in body_graph.vertices() {
                    if self.spec.is_atomic(body_graph.name(sv)) {
                        atomic_count += 1;
                    }
                }
                let _ = map;
            }
            // Push copies in reverse (last copy first) and composites in
            // reverse topological order, so pops run copy 0 first, each
            // in dataflow order.
            for map in applied.copies.iter().rev() {
                for &sv in body_order.iter().rev() {
                    let rv = map[sv.idx()].unwrap();
                    pending_min += min[body_graph.name(sv).0 as usize];
                    pending.push(rv);
                }
            }
        }
        debug_assert!(builder.is_complete());
        let (graph, origin) = builder.into_parts();
        GeneratedRun {
            derivation,
            graph,
            origin,
        }
    }
}

/// Minimum completed size of one body graph.
fn body_min(spec: &Specification, gid: wf_spec::GraphId, min: &[u64]) -> u64 {
    let g = spec.graph(gid);
    g.vertices()
        .map(|v| min[g.name(v).0 as usize])
        .fold(0u64, u64::saturating_add)
}

/// Choose an implementation by drawing a random spend from the slack and
/// taking the most expensive implementation whose extra commitment over
/// the cheapest fits it (random tie-break). Large remaining budgets thus
/// keep recursions and expensive branches going, while a shrinking
/// budget steers derivations into base cases — which forces termination,
/// since some implementation always has zero extra commitment.
fn choose_impl<R: Rng>(
    spec: &Specification,
    impls: &[wf_spec::GraphId],
    min: &[u64],
    name_min: u64,
    slack: u64,
    rng: &mut R,
) -> wf_spec::GraphId {
    debug_assert!(!impls.is_empty());
    let costs: Vec<u64> = impls.iter().map(|&h| body_min(spec, h, min)).collect();
    let spend = if slack == 0 {
        0
    } else {
        rng.gen_range(0..=slack)
    };
    let best_delta = (0..impls.len())
        .map(|i| costs[i].saturating_sub(name_min))
        .filter(|&d| d <= spend)
        .max()
        .unwrap_or(0); // the cheapest impl has delta 0 by definition of name_min
    let ties: Vec<usize> = (0..impls.len())
        .filter(|&i| costs[i].saturating_sub(name_min) == best_delta)
        .collect();
    impls[ties[rng.gen_range(0..ties.len())]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn min_expansions_running_example() {
        let spec = wf_spec::corpus::running_example();
        let min = min_expansions(&spec);
        let at = |n: &str| min[spec.name_id(n).unwrap().0 as usize];
        assert_eq!(at("s0"), 1);
        // A's cheapest body is h4 = {s4, t4}.
        assert_eq!(at("A"), 2);
        // B: {s5,t5} = 2; C: s6 + A + t6 = 4.
        assert_eq!(at("B"), 2);
        assert_eq!(at("C"), 4);
        // F: s2 + A + t2 = 4; L: s1 + F + t1 = 6.
        assert_eq!(at("F"), 4);
        assert_eq!(at("L"), 6);
    }

    #[test]
    fn generated_runs_hit_target_sizes() {
        let spec = wf_spec::corpus::bioaid();
        let mut rng = StdRng::seed_from_u64(11);
        for target in [500usize, 2000, 8000] {
            let run = RunGenerator::new(&spec)
                .target_size(target)
                .generate_run(&mut rng);
            let n = run.graph.vertex_count();
            assert!(run.graph.is_two_terminal());
            assert!(run.graph.is_acyclic());
            let ratio = n as f64 / target as f64;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "target {target} got {n} (ratio {ratio:.2})"
            );
            // All vertices atomic — a member of L(G).
            for v in run.graph.vertices() {
                assert!(spec.is_atomic(run.graph.name(v)));
            }
        }
    }

    #[test]
    fn recursive_specs_terminate() {
        let spec = wf_spec::corpus::running_example();
        let mut rng = StdRng::seed_from_u64(5);
        for target in [50usize, 300, 1500] {
            let run = RunGenerator::new(&spec)
                .target_size(target)
                .generate_run(&mut rng);
            assert!(run.graph.vertex_count() > 0);
            assert!(run.graph.is_acyclic());
        }
    }

    #[test]
    fn derivation_replays_to_identical_graph() {
        let spec = wf_spec::corpus::running_example();
        let mut rng = StdRng::seed_from_u64(21);
        let run = RunGenerator::new(&spec)
            .target_size(200)
            .generate_run(&mut rng);
        let replayed = run.derivation.replay(&spec).unwrap();
        assert!(replayed.is_complete());
        let (g2, origin2) = replayed.into_parts();
        assert_eq!(g2.vertex_count(), run.graph.vertex_count());
        assert_eq!(g2.edge_count(), run.graph.edge_count());
        let e1: Vec<_> = run.graph.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2, "replay is id-for-id identical");
        assert_eq!(origin2, run.origin);
    }

    #[test]
    fn same_seed_same_run() {
        let spec = wf_spec::corpus::bioaid();
        let gen = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            RunGenerator::new(&spec)
                .target_size(1000)
                .generate_run(&mut rng)
        };
        let a = gen(77);
        let b = gen(77);
        let c = gen(78);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_ne!(
            a.graph.edges().collect::<Vec<_>>(),
            c.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn nonlinear_specs_generate_too() {
        let spec = wf_spec::corpus::theorem1();
        let mut rng = StdRng::seed_from_u64(4);
        let run = RunGenerator::new(&spec)
            .target_size(400)
            .generate_run(&mut rng);
        assert!(run.graph.is_acyclic());
        assert!(run.graph.vertex_count() >= 100);
    }

    #[test]
    fn max_copies_caps_fanout() {
        let spec = wf_spec::corpus::bioaid_nonrecursive();
        let mut rng = StdRng::seed_from_u64(9);
        let run = RunGenerator::new(&spec)
            .target_size(5000)
            .max_copies(4)
            .generate_run(&mut rng);
        for step in run.derivation.steps() {
            assert!(step.production.copies <= 4);
        }
    }
}
