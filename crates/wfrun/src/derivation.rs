//! Graph derivations (Definition 9): sequences of vertex replacements.

use serde::{Deserialize, Serialize};
use wf_graph::VertexId;
use wf_spec::grammar::Production;

/// One derivation step `g_{i} = g_{i-1}[u_i / h_i]`.
///
/// `target` is the composite vertex `u_i` (a vertex id in the run graph as
/// built by [`crate::RunBuilder`], whose id allocation is deterministic,
/// so recorded derivations replay exactly). `production` identifies the
/// body `h_i` — including the copy count for loop/fork productions
/// `A := S(h,…,h)` / `A := P(h,…,h)` (Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivationStep {
    /// The composite vertex being replaced.
    pub target: VertexId,
    /// The production applied to it.
    pub production: Production,
}

/// A complete (or partial) derivation: the input of the derivation-based
/// dynamic labeling problem.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Derivation {
    steps: Vec<DerivationStep>,
}

impl Derivation {
    /// An empty derivation (just the start graph).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a step.
    pub fn push(&mut self, step: DerivationStep) {
        self.steps.push(step);
    }

    /// The steps in application order.
    pub fn steps(&self) -> &[DerivationStep] {
        &self.steps
    }

    /// Number of steps `k`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no step was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replay against a specification, returning the fully applied
    /// builder (final graph + provenance).
    pub fn replay<'s>(
        &self,
        spec: &'s wf_spec::Specification,
    ) -> Result<crate::RunBuilder<'s>, crate::builder::RunError> {
        let mut b = crate::RunBuilder::new(spec);
        for step in &self.steps {
            b.apply(step)?;
        }
        Ok(b)
    }
}

impl FromIterator<DerivationStep> for Derivation {
    fn from_iter<T: IntoIterator<Item = DerivationStep>>(iter: T) -> Self {
        Self {
            steps: iter.into_iter().collect(),
        }
    }
}
