//! Graph executions (Definition 8): vertex insertions in topological
//! order, with the execution-log annotations of §5.3.

use rand::Rng;
use serde::{Deserialize, Serialize};
use wf_graph::{Graph, NameId, VertexId};
use wf_spec::GraphId;

/// One insertion event `g_i = g_{i-1} + (v_i, C_i)`.
///
/// `vertex` and `preds` are ids in the *originating* run graph — stable
/// external identifiers the consumer can key its own state by. `origin`
/// is the execution-log entry most scientific workflow systems record
/// (which specification module this step executed); the name-based
/// execution labeler ignores it, the log-based one uses it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecEvent {
    /// The inserted vertex.
    pub vertex: VertexId,
    /// Its module name.
    pub name: NameId,
    /// The insertion set `C_i`: already-inserted vertices with edges into
    /// `vertex`.
    pub preds: Vec<VertexId>,
    /// Execution-log entry: the spec graph and spec vertex this run
    /// vertex instantiates.
    pub origin: (GraphId, VertexId),
}

/// A graph execution: the input of the execution-based dynamic labeling
/// problem.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Execution {
    events: Vec<ExecEvent>,
}

impl Execution {
    /// Build an execution from a completed run by listing its vertices in
    /// the given topological order.
    ///
    /// # Panics
    /// Panics if `order` is not a topological order of `graph`.
    pub fn from_order(graph: &Graph, origin: &[(GraphId, VertexId)], order: &[VertexId]) -> Self {
        assert!(
            wf_graph::topo::is_topological_order(graph, order),
            "execution requires a topological insertion order"
        );
        let events = order
            .iter()
            .map(|&v| ExecEvent {
                vertex: v,
                name: graph.name(v),
                preds: graph.in_neighbors(v).to_vec(),
                origin: origin[v.idx()],
            })
            .collect();
        Self { events }
    }

    /// Build an execution with a deterministic topological order.
    pub fn deterministic(graph: &Graph, origin: &[(GraphId, VertexId)]) -> Self {
        let order = wf_graph::topo::topological_order(graph).expect("run must be a DAG");
        Self::from_order(graph, origin, &order)
    }

    /// Build an execution with a seeded-random topological order
    /// ("randomly select … one execution for each run", §7.1).
    pub fn random<R: Rng>(graph: &Graph, origin: &[(GraphId, VertexId)], rng: &mut R) -> Self {
        let order =
            wf_graph::topo::random_topological_order(graph, rng).expect("run must be a DAG");
        Self::from_order(graph, origin, &order)
    }

    /// The insertion events in order.
    pub fn events(&self) -> &[ExecEvent] {
        &self.events
    }

    /// Number of insertions `n`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the execution is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rebuild the run graph by replaying the insertions (Definition 3);
    /// the result is isomorphic to the originating run and — because
    /// event ids are the original ids — actually identical.
    pub fn replay_graph(&self) -> Graph {
        let mut g = Graph::new();
        let mut map: Vec<Option<VertexId>> = Vec::new();
        for ev in &self.events {
            let preds: Vec<VertexId> = ev
                .preds
                .iter()
                .map(|p| map[p.idx()].expect("preds precede their vertex"))
                .collect();
            let nv = g
                .insert_vertex(ev.name, &preds)
                .expect("valid insertion sequence");
            if ev.vertex.idx() >= map.len() {
                map.resize(ev.vertex.idx() + 1, None);
            }
            map[ev.vertex.idx()] = Some(nv);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::DerivationStep;
    use crate::RunBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_spec::grammar::Production;

    fn small_run() -> (Graph, Vec<(GraphId, VertexId)>) {
        let spec = wf_spec::corpus::running_example();
        let mut b = RunBuilder::new(&spec);
        let l = spec.name_id("L").unwrap();
        let l_impl = spec.implementations(l)[0];
        let f = spec.name_id("F").unwrap();
        let f_impl = spec.implementations(f)[0];
        let a = spec.name_id("A").unwrap();
        let a_base = spec.implementations(a)[1];
        let u = b.graph().find_by_name(l).unwrap();
        b.apply(&DerivationStep {
            target: u,
            production: Production::replicated(l_impl, 2),
        })
        .unwrap();
        while !b.is_complete() {
            let v = b.composite_vertices()[0];
            let name = b.graph().name(v);
            let prod = if name == f {
                Production::replicated(f_impl, 2)
            } else {
                Production::plain(a_base)
            };
            b.apply(&DerivationStep {
                target: v,
                production: prod,
            })
            .unwrap();
        }
        b.into_parts()
    }

    #[test]
    fn deterministic_execution_replays_to_same_graph() {
        let (g, origin) = small_run();
        let exec = Execution::deterministic(&g, &origin);
        assert_eq!(exec.len(), g.vertex_count());
        let replayed = exec.replay_graph();
        assert_eq!(replayed.vertex_count(), g.vertex_count());
        assert_eq!(replayed.edge_count(), g.edge_count());
        // Reachability is identical under the id mapping (same order of
        // names along any topological order).
        let o1 = wf_graph::topo::topological_order(&g).unwrap();
        let o2 = wf_graph::topo::topological_order(&replayed).unwrap();
        let names1: Vec<_> = o1.iter().map(|&v| g.name(v)).collect();
        let names2: Vec<_> = o2.iter().map(|&v| replayed.name(v)).collect();
        assert_eq!(names1, names2);
    }

    #[test]
    fn random_executions_vary_but_stay_topological() {
        let (g, origin) = small_run();
        let mut rng = StdRng::seed_from_u64(3);
        let e1 = Execution::random(&g, &origin, &mut rng);
        let e2 = Execution::random(&g, &origin, &mut rng);
        let order1: Vec<VertexId> = e1.events().iter().map(|e| e.vertex).collect();
        let order2: Vec<VertexId> = e2.events().iter().map(|e| e.vertex).collect();
        assert!(wf_graph::topo::is_topological_order(&g, &order1));
        assert!(wf_graph::topo::is_topological_order(&g, &order2));
        assert_ne!(order1, order2, "different seeds give different orders");
    }

    #[test]
    #[should_panic(expected = "topological insertion order")]
    fn non_topological_order_rejected() {
        let (g, origin) = small_run();
        let mut order = wf_graph::topo::topological_order(&g).unwrap();
        order.reverse();
        let _ = Execution::from_order(&g, &origin, &order);
    }

    #[test]
    fn events_carry_log_origins() {
        let (g, origin) = small_run();
        let exec = Execution::deterministic(&g, &origin);
        for ev in exec.events() {
            assert_eq!(ev.origin, origin[ev.vertex.idx()]);
        }
    }
}
