//! Property tests for histogram correctness and trace-ring semantics.

use proptest::prelude::*;
use wf_obs::metrics::{bucket_index, bucket_upper_bound};
use wf_obs::{Histogram, TraceRing};

/// Exact quantile from a sorted copy, matching the histogram's
/// rank-`⌈q·n⌉` definition.
fn oracle_quantile(values: &[u64], q: f64) -> u64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_value_lands_in_its_bucket(v in 0u64..(1 << 50)) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn quantiles_bracket_the_oracle(
        values in proptest::collection::vec(0u64..(1 << 40), 1..400),
        qx in 0.01f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        for q in [qx, 0.5, 0.99] {
            let oracle = oracle_quantile(&values, q);
            let estimate = snap.quantile(q);
            // Log2 buckets: the estimate is the bucket upper bound, so it
            // is ≥ the true value and < 2x it (exact for 0).
            prop_assert!(estimate >= oracle, "q={} est={} oracle={}", q, estimate, oracle);
            if oracle == 0 {
                prop_assert_eq!(estimate, 0);
            } else {
                prop_assert!(
                    estimate < oracle.saturating_mul(2),
                    "q={} est={} oracle={}", q, estimate, oracle
                );
            }
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one(
        a in proptest::collection::vec(0u64..(1 << 30), 0..200),
        b in proptest::collection::vec(0u64..(1 << 30), 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), hall.snapshot());
    }

    #[test]
    fn trace_ring_keeps_newest(cap in 1usize..64, n in 0usize..200) {
        let ring = TraceRing::new(cap);
        for i in 0..n {
            ring.record("e", Some(i as u64), None, 0, String::new());
        }
        let events = ring.dump();
        prop_assert_eq!(events.len(), n.min(cap));
        prop_assert_eq!(ring.dropped(), n.saturating_sub(cap) as u64);
        // Retained events are exactly the suffix, in order.
        let first = n.saturating_sub(cap) as u64;
        for (offset, e) in events.iter().enumerate() {
            prop_assert_eq!(e.run_id, Some(first + offset as u64));
        }
    }
}

/// Concurrent recording loses nothing: counts and sums add up exactly.
#[test]
fn concurrent_recording_is_lossless() {
    use std::sync::Arc;
    let h = Arc::new(Histogram::new());
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum, n * (n - 1) / 2);
}
