//! Cycle-cheap monotonic timers.
//!
//! `Instant::now()` costs a vDSO call (~20-25ns) — too heavy to bracket
//! a ~40ns reachability probe. [`now`] reads the hardware cycle counter
//! directly (one instruction on x86-64/aarch64) and [`elapsed_ns`]
//! converts tick deltas to nanoseconds with a Q32 fixed-point multiply
//! whose scale is calibrated once per process against `Instant` (the
//! expensive clock is fine for a one-off 2ms calibration; it is only the
//! per-record path that must stay cheap).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// An opaque timestamp from the cycle counter. Only meaningful to this
/// process, and only as the start point of [`elapsed_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticks(pub u64);

/// Read the cycle counter.
#[inline]
pub fn now() -> Ticks {
    Ticks(raw_ticks())
}

/// Nanoseconds elapsed since `start` (saturating, never panics).
#[inline]
pub fn elapsed_ns(start: Ticks) -> u64 {
    ticks_to_ns(raw_ticks().wrapping_sub(start.0))
}

/// Convert a tick delta to nanoseconds via the calibrated Q32 scale.
#[inline]
pub fn ticks_to_ns(delta: u64) -> u64 {
    ((u128::from(delta) * u128::from(scale_q32())) >> 32) as u64
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_ticks() -> u64 {
    // SAFETY: RDTSC is unprivileged and baseline on x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(target_arch = "aarch64")]
#[inline]
fn raw_ticks() -> u64 {
    let v: u64;
    // SAFETY: CNTVCT_EL0 is the EL0-readable virtual counter.
    unsafe {
        core::arch::asm!("mrs {v}, cntvct_el0", v = out(reg) v, options(nomem, nostack));
    }
    v
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline]
fn raw_ticks() -> u64 {
    // No cheap cycle counter: fall back to Instant against a process
    // anchor. Calibration then measures a ~1.0 scale.
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds per tick in Q32 fixed point, calibrated on first use.
fn scale_q32() -> u64 {
    static SCALE: OnceLock<u64> = OnceLock::new();
    *SCALE.get_or_init(calibrate)
}

fn calibrate() -> u64 {
    let wall = Instant::now();
    let t0 = raw_ticks();
    // Spin ~2ms: long enough to swamp the counter-read latency, short
    // enough to be invisible at process start.
    while wall.elapsed() < Duration::from_millis(2) {
        std::hint::spin_loop();
    }
    let ticks = raw_ticks().wrapping_sub(t0).max(1);
    let ns = wall.elapsed().as_nanos().max(1) as u64;
    let q = (u128::from(ns) << 32) / u128::from(ticks);
    u64::try_from(q.max(1)).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_tracks_wall_clock() {
        // Force the one-time calibration before timing anything.
        let _ = elapsed_ns(now());
        let wall = Instant::now();
        let t = now();
        while wall.elapsed() < Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        let cycles_ns = elapsed_ns(t);
        let wall_ns = wall.elapsed().as_nanos() as u64;
        // Within 25% of Instant over a 5ms window — generous enough for
        // CI schedulers, tight enough to catch a broken scale.
        let lo = wall_ns - wall_ns / 4;
        let hi = wall_ns + wall_ns / 4;
        assert!(
            (lo..=hi).contains(&cycles_ns),
            "cycle clock measured {cycles_ns}ns vs wall {wall_ns}ns"
        );
    }

    #[test]
    fn monotonic_non_panicking() {
        let t = now();
        for _ in 0..1000 {
            let _ = elapsed_ns(t);
        }
        assert!(elapsed_ns(t) < 1_000_000_000, "1000 reads should be <1s");
    }
}
