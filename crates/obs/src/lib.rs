//! `wf-obs` — zero-dependency observability for the workflow-provenance
//! engine: atomic metrics, log2 latency histograms, a bounded structured
//! trace ring, and Prometheus/JSON export.
//!
//! The crate is deliberately self-contained (std only, no shims, no
//! network) so every layer of the engine can depend on it without
//! dragging in serialization machinery. Three pieces:
//!
//! - [`clock`] — cycle-cheap monotonic timers. Reading the counter is a
//!   single `rdtsc`/`cntvct_el0` instruction on x86-64/aarch64 (an
//!   `Instant` anchor elsewhere); conversion to nanoseconds is a
//!   fixed-point multiply calibrated once per process.
//! - [`metrics`] — [`MetricsRegistry`] holding named [`Counter`]s,
//!   [`Gauge`]s, and 64-bucket log2 [`Histogram`]s with lock-free
//!   recording, merge, percentile estimation, and snapshots.
//! - [`trace`] — [`TraceRing`], a bounded in-memory ring of structured
//!   [`TraceEvent`]s with overwrite-oldest semantics, for per-subsystem
//!   spans and slow-op promotion.
//!
//! Export surfaces: [`MetricsRegistry::render_prometheus`] (text
//! exposition format) and [`MetricsRegistry::render_json`].

pub mod clock;
pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use trace::{chrome_trace_json, next_span_id, TraceEvent, TraceRing};

/// Append a JSON-escaped string literal (with quotes) to `out`.
///
/// Shared by the metrics and trace JSON renderers; public so embedders
/// building composite dumps escape identically.
pub fn json_escape_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_controls_and_quotes() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
