//! Bounded in-memory structured tracing.
//!
//! [`TraceRing`] keeps the most recent `capacity` [`TraceEvent`]s under a
//! mutex, overwriting the oldest on overflow — recording is off every
//! per-operation fast path (callers only trace lifecycle transitions and
//! slow-op outliers), so a short critical section is fine there.

use crate::{clock, json_escape_into};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-global span id allocator. Ids start at 1 so `0` can mean
/// "no span" in [`TraceEvent`] and in propagated contexts.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique span id (never 0).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the ring was created (engine start).
    pub ts_ns: u64,
    /// Event kind, e.g. `"freeze"`, `"fault_in"`, `"shed"`.
    pub kind: &'static str,
    /// Run the event concerns, when applicable.
    pub run_id: Option<u64>,
    /// Tier the event concerns, when applicable.
    pub tier: Option<&'static str>,
    /// Duration of the traced span; 0 for instantaneous events.
    pub dur_ns: u64,
    /// Trace the event belongs to (the root span's id); 0 when untraced.
    pub trace_id: u64,
    /// This event's span id; 0 when untraced.
    pub span_id: u64,
    /// Parent span id; 0 for roots and untraced events.
    pub parent_id: u64,
    /// Free-form context (bytes moved, file counts, …).
    pub detail: String,
}

impl TraceEvent {
    /// Render as one compact JSON object.
    pub fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"ts_ns\":{},\"kind\":", self.ts_ns);
        json_escape_into(&mut out, self.kind);
        match self.run_id {
            Some(r) => {
                let _ = write!(out, ",\"run\":{r}");
            }
            None => out.push_str(",\"run\":null"),
        }
        match self.tier {
            Some(t) => {
                out.push_str(",\"tier\":");
                json_escape_into(&mut out, t);
            }
            None => out.push_str(",\"tier\":null"),
        }
        let _ = write!(
            out,
            ",\"dur_ns\":{},\"trace\":{},\"span\":{},\"parent\":{},\"detail\":",
            self.dur_ns, self.trace_id, self.span_id, self.parent_id
        );
        json_escape_into(&mut out, &self.detail);
        out.push('}');
        out
    }
}

/// Render events as Chrome `trace_event` JSON (the format `chrome://
/// tracing` and Perfetto load): complete (`"X"`) events for spans with a
/// duration, instants (`"i"`) otherwise. Timestamps are microseconds;
/// each trace becomes one "thread" row (`tid` = trace id) so causally
/// linked spans nest visually.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_escape_into(&mut out, e.kind);
        let ts_us = e.ts_ns / 1_000;
        if e.dur_ns > 0 {
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{}",
                (e.dur_ns / 1_000).max(1)
            );
        } else {
            let _ = write!(out, ",\"ph\":\"i\",\"ts\":{ts_us},\"s\":\"t\"");
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", e.trace_id);
        out.push_str(",\"cat\":");
        json_escape_into(&mut out, e.tier.unwrap_or("engine"));
        let _ = write!(
            out,
            ",\"args\":{{\"span\":{},\"parent\":{}",
            e.span_id, e.parent_id
        );
        if let Some(run) = e.run_id {
            let _ = write!(out, ",\"run\":{run}");
        }
        if !e.detail.is_empty() {
            out.push_str(",\"detail\":");
            json_escape_into(&mut out, &e.detail);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

struct RingInner {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded ring of [`TraceEvent`]s with overwrite-oldest semantics.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    start: clock::Ticks,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for RingInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingInner")
            .field("len", &self.buf.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            start: clock::now(),
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an event with no span identity (`trace`/`span`/`parent`
    /// all 0), stamping `ts_ns` from the ring's creation time. The
    /// oldest event is dropped when the ring is full.
    pub fn record(
        &self,
        kind: &'static str,
        run_id: Option<u64>,
        tier: Option<&'static str>,
        dur_ns: u64,
        detail: String,
    ) {
        self.record_span(kind, run_id, tier, dur_ns, 0, 0, 0, detail);
    }

    /// Record an event carrying causal span identity. Ids of 0 mean
    /// "none"; `trace_id` is the root span's id shared by every event in
    /// the causal tree.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        kind: &'static str,
        run_id: Option<u64>,
        tier: Option<&'static str>,
        dur_ns: u64,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        detail: String,
    ) {
        let event = TraceEvent {
            ts_ns: clock::elapsed_ns(self.start),
            kind,
            run_id,
            tier,
            dur_ns,
            trace_id,
            span_id,
            parent_id,
            detail,
        };
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }

    /// Copy out the retained events, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        inner.buf.iter().cloned().collect()
    }

    /// Number of events overwritten since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_overwrites_oldest() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record("tick", Some(i), None, i, String::new());
        }
        let events = ring.dump();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.dropped(), 6);
        // The four newest survive, oldest first.
        let runs: Vec<u64> = events.iter().filter_map(|e| e.run_id).collect();
        assert_eq!(runs, vec![6, 7, 8, 9]);
        // Timestamps are monotone within the dump.
        for pair in events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    #[test]
    fn capacity_floor_is_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record("a", None, None, 0, String::new());
        ring.record("b", None, None, 0, String::new());
        let events = ring.dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn event_json_shape() {
        let e = TraceEvent {
            ts_ns: 12,
            kind: "fault_in",
            run_id: Some(7),
            tier: Some("persisted"),
            dur_ns: 3400,
            trace_id: 9,
            span_id: 11,
            parent_id: 9,
            detail: "bytes=128".to_string(),
        };
        assert_eq!(
            e.json(),
            "{\"ts_ns\":12,\"kind\":\"fault_in\",\"run\":7,\"tier\":\"persisted\",\
             \"dur_ns\":3400,\"trace\":9,\"span\":11,\"parent\":9,\"detail\":\"bytes=128\"}"
        );
        let bare = TraceEvent {
            ts_ns: 0,
            kind: "shed",
            run_id: None,
            tier: None,
            dur_ns: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            detail: String::new(),
        };
        assert!(bare.json().contains("\"run\":null"));
        assert!(bare.json().contains("\"tier\":null"));
        assert!(bare.json().contains("\"trace\":0,\"span\":0,\"parent\":0"));
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn chrome_export_shapes_complete_and_instant() {
        let span = TraceEvent {
            ts_ns: 2_000,
            kind: "reach",
            run_id: Some(3),
            tier: Some("hot"),
            dur_ns: 5_000,
            trace_id: 1,
            span_id: 1,
            parent_id: 0,
            detail: "u=1 v=2".to_string(),
        };
        let instant = TraceEvent {
            ts_ns: 9_000,
            kind: "stall",
            run_id: None,
            tier: None,
            dur_ns: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            detail: String::new(),
        };
        let json = chrome_trace_json(&[span, instant]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\",\"ts\":2,\"dur\":5"));
        assert!(json.contains("\"ph\":\"i\",\"ts\":9,\"s\":\"t\""));
        assert!(json.contains("\"cat\":\"hot\""));
        assert!(json.contains("\"cat\":\"engine\""));
        assert!(json.contains("\"run\":3"));
        // Sub-microsecond spans still render with a visible width.
        let tiny = TraceEvent {
            dur_ns: 500,
            ..TraceEvent {
                ts_ns: 0,
                kind: "pin",
                run_id: None,
                tier: None,
                dur_ns: 0,
                trace_id: 2,
                span_id: 4,
                parent_id: 2,
                detail: String::new(),
            }
        };
        assert!(chrome_trace_json(&[tiny]).contains("\"dur\":1"));
    }
}
