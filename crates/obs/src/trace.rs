//! Bounded in-memory structured tracing.
//!
//! [`TraceRing`] keeps the most recent `capacity` [`TraceEvent`]s under a
//! mutex, overwriting the oldest on overflow — recording is off every
//! per-operation fast path (callers only trace lifecycle transitions and
//! slow-op outliers), so a short critical section is fine there.

use crate::{clock, json_escape_into};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the ring was created (engine start).
    pub ts_ns: u64,
    /// Event kind, e.g. `"freeze"`, `"fault_in"`, `"shed"`.
    pub kind: &'static str,
    /// Run the event concerns, when applicable.
    pub run_id: Option<u64>,
    /// Tier the event concerns, when applicable.
    pub tier: Option<&'static str>,
    /// Duration of the traced span; 0 for instantaneous events.
    pub dur_ns: u64,
    /// Free-form context (bytes moved, file counts, …).
    pub detail: String,
}

impl TraceEvent {
    /// Render as one compact JSON object.
    pub fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"ts_ns\":{},\"kind\":", self.ts_ns);
        json_escape_into(&mut out, self.kind);
        match self.run_id {
            Some(r) => {
                let _ = write!(out, ",\"run\":{r}");
            }
            None => out.push_str(",\"run\":null"),
        }
        match self.tier {
            Some(t) => {
                out.push_str(",\"tier\":");
                json_escape_into(&mut out, t);
            }
            None => out.push_str(",\"tier\":null"),
        }
        let _ = write!(out, ",\"dur_ns\":{},\"detail\":", self.dur_ns);
        json_escape_into(&mut out, &self.detail);
        out.push('}');
        out
    }
}

struct RingInner {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded ring of [`TraceEvent`]s with overwrite-oldest semantics.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    start: clock::Ticks,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for RingInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingInner")
            .field("len", &self.buf.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            start: clock::now(),
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an event, stamping `ts_ns` from the ring's creation time.
    /// The oldest event is dropped when the ring is full.
    pub fn record(
        &self,
        kind: &'static str,
        run_id: Option<u64>,
        tier: Option<&'static str>,
        dur_ns: u64,
        detail: String,
    ) {
        let event = TraceEvent {
            ts_ns: clock::elapsed_ns(self.start),
            kind,
            run_id,
            tier,
            dur_ns,
            detail,
        };
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }

    /// Copy out the retained events, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        inner.buf.iter().cloned().collect()
    }

    /// Number of events overwritten since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_overwrites_oldest() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record("tick", Some(i), None, i, String::new());
        }
        let events = ring.dump();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.dropped(), 6);
        // The four newest survive, oldest first.
        let runs: Vec<u64> = events.iter().filter_map(|e| e.run_id).collect();
        assert_eq!(runs, vec![6, 7, 8, 9]);
        // Timestamps are monotone within the dump.
        for pair in events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    #[test]
    fn capacity_floor_is_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record("a", None, None, 0, String::new());
        ring.record("b", None, None, 0, String::new());
        let events = ring.dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn event_json_shape() {
        let e = TraceEvent {
            ts_ns: 12,
            kind: "fault_in",
            run_id: Some(7),
            tier: Some("persisted"),
            dur_ns: 3400,
            detail: "bytes=128".to_string(),
        };
        assert_eq!(
            e.json(),
            "{\"ts_ns\":12,\"kind\":\"fault_in\",\"run\":7,\"tier\":\"persisted\",\
             \"dur_ns\":3400,\"detail\":\"bytes=128\"}"
        );
        let bare = TraceEvent {
            ts_ns: 0,
            kind: "shed",
            run_id: None,
            tier: None,
            dur_ns: 0,
            detail: String::new(),
        };
        assert!(bare.json().contains("\"run\":null"));
        assert!(bare.json().contains("\"tier\":null"));
    }
}
