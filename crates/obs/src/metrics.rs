//! Lock-free metrics: counters, gauges, and log2 latency histograms
//! behind a name-indexed [`MetricsRegistry`].
//!
//! Recording never blocks: counters and gauges are single relaxed
//! atomics, a histogram record is three. Registration (get-or-create by
//! name) takes a registry write lock, so handles are meant to be looked
//! up once at startup and cached.

use crate::json_escape_into;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log2 buckets per histogram.
///
/// Bucket 0 holds the value 0; bucket `i` (1 ≤ i < 63) holds values with
/// bit length `i`, i.e. the range `[2^(i-1), 2^i - 1]`; bucket 63 holds
/// everything from `2^62` up. With nanosecond samples that spans 1ns to
/// ~146 years at 2x resolution — plenty for latency work.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (used as the Prometheus `le` label).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Monotonically increasing counter. Cheap to clone; clones share state.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry (useful in tests).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge. Cheap to clone; clones share state.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge detached from any registry (useful in tests).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log2 latency histogram with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation (three relaxed atomic adds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold every observation of `other` into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording may tear `sum` against
    /// the bucket counts by a few in-flight samples; bucket counts
    /// themselves are internally consistent per bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Owned copy of a [`Histogram`]'s state, for percentiles and export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`).
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` observation, so the estimate `e` of a true value
    /// `v ≥ 1` satisfies `v ≤ e < 2v` (log2 buckets). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }
}

struct Family<T: ?Sized> {
    name: String,
    help: String,
    value: Arc<T>,
}

impl<T: ?Sized> Family<T> {
    fn new(name: &str, help: &str, value: Arc<T>) -> Self {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name {name:?} is not a valid Prometheus identifier"
        );
        Self {
            name: name.to_string(),
            help: help.to_string(),
            value,
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Family<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family").field("name", &self.name).finish()
    }
}

/// Name-indexed collection of metric families, in registration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<Vec<Family<AtomicU64>>>,
    gauges: RwLock<Vec<Family<AtomicU64>>>,
    histograms: RwLock<Vec<Family<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut families = self.counters.write().expect("registry poisoned");
        if let Some(f) = families.iter().find(|f| f.name == name) {
            return Counter(Arc::clone(&f.value));
        }
        let cell = Arc::new(AtomicU64::new(0));
        families.push(Family::new(name, help, Arc::clone(&cell)));
        Counter(cell)
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut families = self.gauges.write().expect("registry poisoned");
        if let Some(f) = families.iter().find(|f| f.name == name) {
            return Gauge(Arc::clone(&f.value));
        }
        let cell = Arc::new(AtomicU64::new(0));
        families.push(Family::new(name, help, Arc::clone(&cell)));
        Gauge(cell)
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut families = self.histograms.write().expect("registry poisoned");
        if let Some(f) = families.iter().find(|f| f.name == name) {
            return Arc::clone(&f.value);
        }
        let hist = Arc::new(Histogram::new());
        families.push(Family::new(name, help, Arc::clone(&hist)));
        hist
    }

    /// Current value of the counter `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let families = self.counters.read().expect("registry poisoned");
        families
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.value.load(Ordering::Relaxed))
    }

    /// Current value of the gauge `name`, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        let families = self.gauges.read().expect("registry poisoned");
        families
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.value.load(Ordering::Relaxed))
    }

    /// Snapshot of the histogram `name`, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let families = self.histograms.read().expect("registry poisoned");
        families
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.value.snapshot())
    }

    /// Names of all registered histogram families, in registration order.
    pub fn histogram_names(&self) -> Vec<String> {
        let families = self.histograms.read().expect("registry poisoned");
        families.iter().map(|f| f.name.clone()).collect()
    }

    /// Render every family in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le=...}` samples up to the
    /// highest non-empty bucket plus `le="+Inf"`, then `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in self.counters.read().expect("registry poisoned").iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} counter", f.name);
            let _ = writeln!(out, "{} {}", f.name, f.value.load(Ordering::Relaxed));
        }
        for f in self.gauges.read().expect("registry poisoned").iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} gauge", f.name);
            let _ = writeln!(out, "{} {}", f.name, f.value.load(Ordering::Relaxed));
        }
        for f in self.histograms.read().expect("registry poisoned").iter() {
            let snap = f.value.snapshot();
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} histogram", f.name);
            let top = snap
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .map_or(0, |i| i + 1)
                .min(HISTOGRAM_BUCKETS - 1);
            let mut cumulative = 0u64;
            for (i, &c) in snap.buckets.iter().enumerate().take(top + 1) {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    f.name,
                    bucket_upper_bound(i),
                    cumulative
                );
            }
            let total = snap.count();
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", f.name, total);
            let _ = writeln!(out, "{}_sum {}", f.name, snap.sum);
            let _ = writeln!(out, "{}_count {}", f.name, total);
        }
        out
    }

    /// Render every family as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,p50,p90,p99,buckets:[[le,n],..]}}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, f) in self
            .counters
            .read()
            .expect("registry poisoned")
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(&mut out, &f.name);
            let _ = write!(out, ":{}", f.value.load(Ordering::Relaxed));
        }
        out.push_str("},\"gauges\":{");
        for (i, f) in self
            .gauges
            .read()
            .expect("registry poisoned")
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(&mut out, &f.name);
            let _ = write!(out, ":{}", f.value.load(Ordering::Relaxed));
        }
        out.push_str("},\"histograms\":{");
        for (i, f) in self
            .histograms
            .read()
            .expect("registry poisoned")
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let snap = f.value.snapshot();
            json_escape_into(&mut out, &f.name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                snap.count(),
                snap.sum,
                snap.p50(),
                snap.p90(),
                snap.p99()
            );
            let mut first = true;
            for (b, &c) in snap.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{}]", bucket_upper_bound(b), c);
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 15, 16, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} below bucket {i}");
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 5050);
        // True p50 is 50 → bucket [32,63]; estimate must bracket it.
        let p50 = s.p50();
        assert!((50..100).contains(&p50), "p50 estimate {p50}");
        let p99 = s.p99();
        assert!((99..198).contains(&p99), "p99 estimate {p99}");
        assert_eq!(s.quantile(0.0), s.quantile(0.000001));
        assert!(s.quantile(1.0) >= p99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_adds_observations() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 315);
        let mut sa = Histogram::new().snapshot();
        sa.merge(&s);
        assert_eq!(sa, s);
    }

    #[test]
    fn registry_get_or_create_shares_state() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("wf_test_total", "a test counter");
        let c2 = reg.counter("wf_test_total", "a test counter");
        c1.add(3);
        c2.inc();
        assert_eq!(reg.counter_value("wf_test_total"), Some(4));
        let g = reg.gauge("wf_test_gauge", "a gauge");
        g.set(17);
        assert_eq!(reg.gauge_value("wf_test_gauge"), Some(17));
        let h = reg.histogram("wf_test_ns", "a histogram");
        h.record(42);
        assert_eq!(
            reg.histogram_snapshot("wf_test_ns").map(|s| s.count()),
            Some(1)
        );
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("wf_ops_total", "ops").add(7);
        reg.gauge("wf_depth", "queue depth").set(3);
        let h = reg.histogram("wf_lat_ns", "latency");
        h.record(0);
        h.record(5);
        h.record(700);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE wf_ops_total counter"));
        assert!(text.contains("wf_ops_total 7"));
        assert!(text.contains("# TYPE wf_depth gauge"));
        assert!(text.contains("# TYPE wf_lat_ns histogram"));
        assert!(text.contains("wf_lat_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("wf_lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("wf_lat_ns_sum 705"));
        assert!(text.contains("wf_lat_ns_count 3"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("wf_lat_ns_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "non-cumulative bucket line: {line}");
            last = n;
        }
    }

    #[test]
    fn json_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("wf_a_total", "a").inc();
        reg.histogram("wf_b_ns", "b").record(9);
        let json = reg.render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"wf_a_total\":1"));
        assert!(json.contains("\"wf_b_ns\":{\"count\":1,\"sum\":9"));
        assert!(json.ends_with("}}"));
    }
}
