//! # wf-provenance
//!
//! A from-scratch Rust reproduction of **"Labeling Recursive Workflow
//! Executions On-the-Fly"** (Zhuowei Bao, Susan B. Davidson, Tova Milo,
//! SIGMOD 2011): compact *dynamic* reachability labels for workflow runs.
//!
//! This façade crate re-exports the workspace:
//!
//! * [`graph`] — two-terminal DAGs and the graph operations of §2.1.
//! * [`spec`] — workflow specifications & graph grammars (§2.2–2.3).
//! * [`skeleton`] — static schemes for labeling specification graphs
//!   (TCL / BFS, §3.2 & §5.1).
//! * [`run`] — derivations, executions and run generators (§2.4, §7.1).
//! * [`drl`] — **DRL**, the paper's dynamic labeling scheme (§4–6).
//! * [`skl`] — the static SKL baseline (§7.4, reconstruction of \[6\]).
//!
//! ## Quickstart
//!
//! ```
//! use wf_provenance::prelude::*;
//!
//! // The paper's running example (Figure 2).
//! let spec = wf_spec::corpus::running_example();
//! assert_eq!(spec.grammar().classify(), RecursionClass::LinearRecursive);
//!
//! // Label the specification once (skeleton labels, §5.1)…
//! let skeleton = TclSpecLabels::build(&spec);
//!
//! // …then label a run on-the-fly while it derives (§5.2).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let derivation = RunGenerator::new(&spec).target_size(200).generate(&mut rng);
//! let mut labeler = DerivationLabeler::new(&spec, &skeleton);
//! for step in derivation.steps() {
//!     labeler.apply(step).unwrap();
//! }
//!
//! // Constant-time reachability from labels alone (Algorithm 4).
//! let run = labeler.graph();
//! let a = run.vertices().next().unwrap();
//! for b in run.vertices() {
//!     let fast = labeler.predicate().reaches(labeler.label(a).unwrap(), labeler.label(b).unwrap());
//!     assert_eq!(fast, wf_graph::reach::reaches(run, a, b));
//! }
//! ```

//! ## Concurrent engine quickstart
//!
//! [`service`] (`wf-service`) labels **many runs at once** behind an
//! owned, `Send + Sync + 'static` [`WfEngine`](wf_service::WfEngine):
//! channel-fed pipelined ingest through a persistent worker pool,
//! lock-free constant-time reachability queries concurrent with
//! ingestion, and a cross-run query surface over the whole fleet.
//!
//! ```
//! use wf_provenance::prelude::*;
//!
//! // The engine owns its catalog (specs + skeleton labels, built once).
//! let engine: WfEngine = WfEngine::builder()
//!     .spec(wf_spec::corpus::running_example())
//!     .ingest_workers(2)
//!     .build();
//!
//! // Open a run and stream its execution events through the pool.
//! let run = engine.open_run(SpecId(0)).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let gen = RunGenerator::new(&engine.context(SpecId(0)).unwrap().spec)
//!     .target_size(80)
//!     .generate_run(&mut rng);
//! let exec = Execution::deterministic(&gen.graph, &gen.origin);
//! let handle = engine.handle(run).unwrap(); // cloneable, lifetime-free
//! for ev in exec.events() {
//!     engine.ingest(ServiceEvent { run, op: RunOp::Insert(ev.clone()) }).unwrap();
//!     // Queries are answered mid-ingest, from published labels alone.
//!     let _ = handle.reach(exec.events()[0].vertex, ev.vertex);
//! }
//! engine.flush();                     // watermark barrier
//! engine.complete_run(run).unwrap();
//!
//! // Cross-run lineage: which completed runs reach a given module name
//! // from their source?
//! let name = exec.events()[1].name;
//! let hits = engine.query().completed().runs_reaching_named_from_source(name);
//! assert_eq!(hits, vec![run]);
//! assert_eq!(engine.stats().runs_completed, 1);
//!
//! // Completed runs can be *frozen*: compacted into an encoded arena,
//! // the dynamic labeler state dropped. Queries are tier-transparent.
//! engine.freeze_run(run).unwrap();
//! assert_eq!(engine.run_tier(run).unwrap(), Tier::Frozen);
//! assert_eq!(
//!     engine.query().completed().runs_reaching_named_from_source(name),
//!     vec![run]
//! );
//! ```

pub use wf_drl as drl;
pub use wf_graph as graph;
pub use wf_obs as obs;
pub use wf_run as run;
pub use wf_service as service;
pub use wf_skeleton as skeleton;
pub use wf_skl as skl;
pub use wf_spec as spec;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use rand::SeedableRng;
    pub use wf_drl::{
        decode_label, encode_label, naive::NaiveDynamicDag, DerivationLabeler, DrlLabel,
        DrlPredicate, ExecutionLabeler, RecursionMode, ResolutionMode,
    };
    pub use wf_graph::{Graph, NameId, VertexId};
    pub use wf_run::{CanonicalParseTree, Derivation, ExecEvent, Execution, RunGenerator};
    pub use wf_service::{
        CompactionReport, CrossRunQuery, Delta, EngineBuilder, EngineMetrics, EngineStats,
        ExplainQuery, Explained, FrozenRun, Health, HistogramSnapshot, QueryProfile, RunHandle,
        RunId, RunOp, RunStatus, ServiceError, ServiceEvent, ServiceStats, SklReport, SourceReach,
        SpecContext, SpecId, StallCause, SubPredicate, Subscription, Tier, TraceEvent, WalSync,
        WfEngine, Witness,
    };
    pub use wf_skeleton::{BfsSpecLabels, SpecLabeling, TclSpecLabels};
    pub use wf_skl::{SklBfs, SklLabeling};
    pub use wf_spec::{RecursionClass, SpecStats, Specification};
}
