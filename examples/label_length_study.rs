//! Label-length study: how the three schemes scale with run size.
//!
//! Sweeps run sizes on the non-recursive BioAID variant and prints the
//! maximum label length of dynamic DRL (slope ≈ 1·log n), static SKL
//! (slope ≈ 3·log n) and the naive dynamic transitive-closure scheme
//! (n − 1 bits — the Θ(n) wall of Theorem 1). This is Figures 14/19/20
//! in miniature, runnable in seconds.
//!
//! ```text
//! cargo run --release --example label_length_study
//! ```

use rand::rngs::StdRng;
use wf_provenance::prelude::*;
use wf_skeleton::TclLabels;

fn main() {
    let spec = wf_spec::corpus::bioaid_nonrecursive();
    let skeleton = TclSpecLabels::build(&spec);
    println!(
        "{:>6}  {:>9}  {:>9}  {:>11}",
        "n", "DRL(max)", "SKL(max)", "naive(max)"
    );
    for (i, target) in [500usize, 1000, 2000, 4000, 8000].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(42 + i as u64);
        let run = RunGenerator::new(&spec)
            .target_size(*target)
            .generate_run(&mut rng);
        // DRL: labeled during the derivation.
        let mut drl = DerivationLabeler::new(&spec, &skeleton);
        for step in run.derivation.steps() {
            drl.apply(step).unwrap();
        }
        let drl_max = run
            .graph
            .vertices()
            .map(|v| drl.label_bits(v).unwrap())
            .max()
            .unwrap();
        // SKL: labeled after the run completes.
        let skl: SklLabeling<TclLabels> = SklLabeling::build(&spec, &run.derivation).unwrap();
        let skl_max = run
            .graph
            .vertices()
            .map(|v| skl.label_bits(v).unwrap())
            .max()
            .unwrap();
        // Naive dynamic TCL over the same execution.
        let mut naive = NaiveDynamicDag::new();
        for &v in &wf_graph::topo::topological_order(&run.graph).unwrap() {
            naive.insert(v, run.graph.in_neighbors(v));
        }
        println!(
            "{:>6}  {:>9}  {:>9}  {:>11}",
            run.graph.vertex_count(),
            drl_max,
            skl_max,
            naive.max_label_bits()
        );
        // Sanity: all three agree with each other on a sample.
        let vs: Vec<VertexId> = run.graph.vertices().collect();
        for &a in vs.iter().step_by(41) {
            for &b in vs.iter().step_by(37) {
                let d = drl.reaches(a, b).unwrap();
                assert_eq!(d, skl.reaches_vertices(a, b).unwrap());
                assert_eq!(d, naive.reaches(a, b));
            }
        }
    }
    println!(
        "\nDRL grows ~1 bit per size doubling, SKL ~3, naive ~n — the paper's Figure 20 shape."
    );
}
