//! The `wf-service` subsystem end to end: a fleet of workflow runs
//! ingesting **concurrently** — per-run ordered events, cross-run
//! parallelism — while reader threads answer reachability queries
//! against published labels, lock-free and mid-flight.
//!
//! The scenario mirrors a production workflow engine: several pipelines
//! (two different specifications) execute at once; the provenance
//! service labels each module invocation the moment its event arrives
//! (the paper's on-the-fly guarantee), and monitoring dashboards query
//! lineage continuously without ever blocking an ingest writer.
//!
//! ```text
//! cargo run --example concurrent_service
//! ```

use rand::rngs::StdRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use wf_provenance::prelude::*;

fn main() {
    // Shared catalog: each specification is preprocessed once (skeleton
    // labels, §5.1); every run of that workflow labels against it.
    let catalog: Vec<SpecContext> = vec![
        SpecContext::from_spec(wf_spec::corpus::running_example()),
        SpecContext::from_spec(wf_spec::corpus::bioaid()),
    ];

    // A fleet of eight simulated executions across the two
    // specifications — generated *before* the service starts, so the
    // service's events/s reflects ingest alone.
    const FLEET: usize = 8;
    let mut executions = Vec::new();
    for i in 0..FLEET {
        let spec = SpecId(i % catalog.len());
        let mut rng = StdRng::seed_from_u64(2011 + i as u64);
        let gen = RunGenerator::new(&catalog[spec.0].spec)
            .target_size(1200)
            .generate_run(&mut rng);
        let exec = Execution::random(&gen.graph, &gen.origin, &mut rng);
        executions.push((spec, exec));
    }

    let service = WfService::with_shards(&catalog, 8);
    let runs: Vec<(RunId, &Execution)> = executions
        .iter()
        .map(|(spec, exec)| (service.open_run(*spec).expect("catalog spec"), exec))
        .collect();
    let total_events: usize = runs.iter().map(|(_, e)| e.len()).sum();
    println!(
        "fleet: {FLEET} runs over {} specifications, {total_events} events total",
        catalog.len()
    );

    let done = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);
    let mid_flight = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Two monitoring threads first (so they are live before the
        // first event lands): lock-free queries over random pairs,
        // racing the writers.
        for seed in 0..2u64 {
            let runs = &runs;
            let service = &service;
            let (done, queries, mid_flight) = (&done, &queries, &mid_flight);
            scope.spawn(move || {
                use rand::Rng;
                let mut rng = StdRng::seed_from_u64(seed);
                // Keep querying until ingestion finishes, and land at
                // least 10k answered queries so the demo reports a
                // meaningful sample however the scheduler interleaves
                // the threads (this container may have a single core).
                let mut answered = 0u32;
                while !done.load(Ordering::Acquire) || answered < 10_000 {
                    let (run, exec) = &runs[rng.gen_range(0..runs.len())];
                    let handle = service.handle(*run).expect("run registered");
                    let u = exec.events()[rng.gen_range(0..exec.len())].vertex;
                    let v = exec.events()[rng.gen_range(0..exec.len())].vertex;
                    let published = handle.published();
                    if handle.reach(u, v).is_some() {
                        answered += 1;
                        queries.fetch_add(1, Ordering::Relaxed);
                        if published < exec.len() {
                            mid_flight.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // One writer thread per run: events must arrive in order per
        // run; distinct runs ingest fully in parallel. Each writer
        // resolves its run handle once and streams through it — no
        // registry lookup per event.
        for (run, exec) in &runs {
            scope.spawn(|| {
                let h = service.handle(*run).expect("run registered");
                for ev in exec.events() {
                    h.submit(ev).expect("healthy event stream");
                }
                h.complete().expect("was live");
            });
        }
        // Coordinator: stop the monitors once every run completed.
        scope.spawn(|| loop {
            let all = runs
                .iter()
                .all(|(r, _)| service.run_status(*r).unwrap() != RunStatus::Live);
            if all {
                done.store(true, Ordering::Release);
                break;
            }
            std::thread::yield_now();
        });
    });

    let stats = service.stats();
    println!(
        "ingested {} events in {:.1?} ({:.0} events/s sustained)",
        stats.events_ingested,
        stats.uptime,
        stats.events_per_sec()
    );
    println!(
        "queries answered: {} ({} raced live ingestion)",
        queries.load(Ordering::Relaxed),
        mid_flight.load(Ordering::Relaxed)
    );
    println!(
        "labels published: {} (avg {:.1} bits — the paper's O(log n) in practice)",
        stats.labels_published,
        stats.avg_label_bits()
    );
    println!("service: {stats}");

    // Spot-check a lineage question on the first run, post completion.
    let (run, exec) = &runs[0];
    let handle = service.handle(*run).unwrap();
    let src = exec.events()[0].vertex;
    let last = exec.events()[exec.len() - 1].vertex;
    println!(
        "lineage spot check on {run}: source ; last = {:?}",
        handle.reach(src, last)
    );
}
