//! The `wf-service` Engine API v2 end to end: a fleet of workflow runs
//! streamed through the **persistent channel-fed ingest pool** — per-run
//! ordered events, cross-run parallelism across workers — while
//! monitoring threads holding **cloned, lifetime-free run handles**
//! answer reachability queries against published labels, lock-free and
//! mid-flight, and a **cross-run query** sums up lineage over the whole
//! fleet at the end.
//!
//! The scenario mirrors a production workflow engine: several pipelines
//! (two different specifications) execute at once; the provenance
//! engine labels each module invocation the moment its event arrives
//! (the paper's on-the-fly guarantee), and dashboards query lineage
//! continuously without ever blocking an ingest worker.
//!
//! ```text
//! cargo run --example concurrent_service
//! ```

use rand::rngs::StdRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use wf_provenance::prelude::*;

fn main() {
    // The engine owns its catalog: each specification is preprocessed
    // once (skeleton labels, §5.1); every run labels against it. All
    // configuration happens in the builder — nothing to mutate later.
    let engine: WfEngine = WfEngine::builder()
        .spec(wf_spec::corpus::running_example())
        .spec(wf_spec::corpus::bioaid())
        .shards(8)
        .ingest_workers(4)
        .queue_capacity(512)
        .build();

    // A fleet of eight simulated executions across the two
    // specifications — generated *before* ingestion starts, so the
    // engine's events/s reflects ingest alone.
    const FLEET: usize = 8;
    let mut executions = Vec::new();
    for i in 0..FLEET {
        let spec = SpecId(i % engine.catalog().len());
        let mut rng = StdRng::seed_from_u64(2011 + i as u64);
        let gen = RunGenerator::new(&engine.context(spec).unwrap().spec)
            .target_size(1200)
            .generate_run(&mut rng);
        let exec = Execution::random(&gen.graph, &gen.origin, &mut rng);
        executions.push((spec, exec));
    }

    let runs: Vec<(RunId, &Execution)> = executions
        .iter()
        .map(|(spec, exec)| (engine.open_run(*spec).expect("catalog spec"), exec))
        .collect();
    let total_events: usize = runs.iter().map(|(_, e)| e.len()).sum();
    println!(
        "fleet: {FLEET} runs over {} specifications, {total_events} events total",
        engine.catalog().len()
    );

    let done = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);
    let mid_flight = AtomicUsize::new(0);
    // Handles are cloneable and `'static`: resolve them once, hand
    // clones to whoever needs them.
    let handles: Vec<(RunHandle, &Execution)> = runs
        .iter()
        .map(|(run, exec)| (engine.handle(*run).expect("run registered"), *exec))
        .collect();
    std::thread::scope(|scope| {
        // Two monitoring threads first (so they are live before the
        // first event lands): lock-free queries over random pairs,
        // racing the ingest workers.
        for seed in 0..2u64 {
            let handles = &handles;
            let (done, queries, mid_flight) = (&done, &queries, &mid_flight);
            scope.spawn(move || {
                use rand::Rng;
                let mut rng = StdRng::seed_from_u64(seed);
                // Keep querying until ingestion finishes, and land at
                // least 10k answered queries so the demo reports a
                // meaningful sample however the scheduler interleaves
                // the threads (this container may have a single core).
                let mut answered = 0u32;
                while !done.load(Ordering::Acquire) || answered < 10_000 {
                    let (handle, exec) = &handles[rng.gen_range(0..handles.len())];
                    let u = exec.events()[rng.gen_range(0..exec.len())].vertex;
                    let v = exec.events()[rng.gen_range(0..exec.len())].vertex;
                    let published = handle.published();
                    if handle.reach(u, v).is_some() {
                        answered += 1;
                        queries.fetch_add(1, Ordering::Relaxed);
                        if published < exec.len() {
                            mid_flight.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // One producer thread per run feeds the pipelined ingest path:
        // events of a run arrive in order (the pool pins each run to one
        // worker's FIFO queue), distinct runs fan out across workers,
        // and the bounded queues push back if producers outrun labeling.
        for (run, exec) in &runs {
            let engine = &engine;
            scope.spawn(move || {
                for ev in exec.events() {
                    engine
                        .ingest(ServiceEvent {
                            run: *run,
                            op: RunOp::Insert(ev.clone()),
                        })
                        .expect("healthy event stream");
                }
                // Completion flows through the same queue, so it lands
                // after every event above.
                engine.complete_run(*run).expect("was live");
            });
        }
        // Coordinator: stop the monitors once every run completed.
        scope.spawn(|| loop {
            let all = runs
                .iter()
                .all(|(r, _)| engine.run_status(*r).unwrap() != RunStatus::Live);
            if all {
                done.store(true, Ordering::Release);
                break;
            }
            std::thread::yield_now();
        });
    });

    // Watermark barrier: everything enqueued above is applied.
    let watermark = engine.flush();
    let stats = engine.stats();
    println!(
        "ingested {} events in {:.1?} ({:.0} events/s sustained, watermark {watermark})",
        stats.events_ingested,
        stats.uptime,
        stats.events_per_sec()
    );
    println!(
        "queries answered: {} ({} raced live ingestion)",
        queries.load(Ordering::Relaxed),
        mid_flight.load(Ordering::Relaxed)
    );
    println!(
        "labels published: {} (avg {:.1} bits — the paper's O(log n) in practice)",
        stats.labels_published,
        stats.avg_label_bits()
    );
    println!("engine: {stats}");

    // The cross-run query surface: fleet-level lineage without touching
    // any run's writer. "Which completed runs have a vertex with this
    // module name reachable from their source?"
    let probe = executions[0].1.events()[executions[0].1.len() / 2].name;
    let reached = engine
        .query()
        .completed()
        .runs_reaching_named_from_source(probe);
    println!(
        "cross-run: {}/{} completed runs reach module name {:?} from their source",
        reached.len(),
        FLEET,
        probe
    );

    // Spot-check a lineage question on the first run, post completion.
    let (run, exec) = &runs[0];
    let handle = engine.handle(*run).unwrap();
    let src = exec.events()[0].vertex;
    let last = exec.events()[exec.len() - 1].vertex;
    println!(
        "lineage spot check on {run}: source ; last = {:?}",
        handle.reach(src, last)
    );
}
