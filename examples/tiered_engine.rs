//! Run lifecycle across the tiered label store:
//! open → completed → **frozen** (encoded arena + SKL re-label) →
//! **persisted** (disk snapshot) → **re-heated** (resident again under
//! query traffic) — with queries answered identically at every stage,
//! the persisted segments **compacted** into packed files, and the
//! per-tier footprint JSON CI harvests.
//!
//! ```text
//! cargo run --release --example tiered_engine
//! ```
//!
//! Three machine-readable stdout lines feed CI artifacts: the
//! `compaction` JSON (before/after file-count + byte stats), the
//! engine's `tier_footprint` JSON (per-tier bytes plus the SKL-vs-DRL
//! deltas recorded at freeze time — which format-v2 segments persist,
//! so they survive engine restarts), and the `wal_recovery` JSON from
//! the second act: a WAL-backed engine is killed mid-run
//! (`std::mem::forget` — no drain, no Drop, exactly what SIGKILL
//! leaves behind) and a fresh build over the same log resurrects the
//! run and finishes it.

use std::sync::Arc;
use wf_provenance::prelude::*;

fn main() {
    // A non-recursive workflow so the freeze-time SKL re-label applies
    // (§7.4's static baseline rejects recursion — DRL's whole edge).
    let spec = wf_spec::corpus::bioaid_nonrecursive();
    let spill = std::env::temp_dir().join(format!("wf-tiered-engine-{}", std::process::id()));

    let engine: WfEngine = WfEngine::builder()
        .spec(spec)
        .ingest_workers(4)
        .freeze_after(8) // keep the 8 most recent completions hot
        .spill_dir(&spill) // frozen runs spill to disk automatically
        .max_resident_bytes(256 * 1024) // LRU budget over loaded segments
        .build();
    let ctx = Arc::clone(engine.context(SpecId(0)).unwrap());

    // A fleet of 32 runs: ingest, hand the engine each run's derivation
    // (unlocking the SKL re-label), complete.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let mut runs = Vec::new();
    let mut probe = None;
    for _ in 0..32 {
        let run = engine.open_run(SpecId(0)).unwrap();
        let gen = RunGenerator::new(&ctx.spec)
            .target_size(400)
            .generate_run(&mut rng);
        let exec = Execution::random(&gen.graph, &gen.origin, &mut rng);
        for ev in exec.events() {
            engine
                .ingest(ServiceEvent {
                    run,
                    op: RunOp::Insert(ev.clone()),
                })
                .unwrap();
        }
        engine.flush();
        engine
            .provide_derivation(run, gen.derivation.clone())
            .unwrap();
        engine.complete_run(run).unwrap();
        probe.get_or_insert(exec.events()[1].name);
        runs.push((run, exec));
    }

    // Let the background tiering worker converge: 8 hot, the rest cold.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while engine.stats().runs_hot > 8 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let stats = engine.stats();
    println!("engine: {stats}");
    println!(
        "tiers: {} hot / {} frozen / {} persisted ({} freezes, {} spills)",
        stats.runs_hot, stats.runs_frozen, stats.runs_persisted, stats.freezes, stats.spills
    );

    // Compaction: the spilled runs each landed in their own
    // `run-<id>.wfseg`; pack them into one multi-run file (the CI
    // compaction artifact is this line).
    let report = engine.compact().expect("spill dir configured");
    println!("{}", report.json());
    println!(
        "compaction: {} segment files → {} ({} runs packed)",
        report.files_before, report.files_after, report.runs_packed
    );

    // Re-heat: the oldest run sees query traffic again — promote it
    // back to the resident (frozen) tier; queries stop touching disk.
    let oldest = runs[0].0;
    engine.reheat_run(oldest).expect("persisted run re-heats");
    println!(
        "re-heat: {oldest} promoted {:?} → {:?}",
        Tier::Persisted,
        engine.run_tier(oldest).unwrap()
    );

    // Tier-transparent queries: every run answers, whatever its tier,
    // and the answers agree with a fresh handle taken *after* tiering.
    let probe = probe.unwrap();
    let hits = engine
        .query()
        .completed()
        .runs_reaching_named_from_source(probe);
    println!(
        "cross-run scan (name {probe:?}): {} of {} completed runs hit, across all tiers",
        hits.len(),
        runs.len()
    );
    for (run, exec) in &runs {
        let h = engine.handle(*run).unwrap();
        let (u, v) = (exec.events()[0].vertex, exec.events()[1].vertex);
        assert_eq!(h.reach(u, v), Some(true), "{run} ({:?} tier)", h.tier());
    }

    // The DRL-vs-SKL comparison the freezer recorded (§7.4, per run).
    if stats.skl_relabeled > 0 {
        println!(
            "SKL re-label over {} frozen runs: {} SKL bits vs {} DRL bits \
             (ratio {:.2}; paper's eq. 4 predicts ≈3 asymptotically); \
             sampled queries: SKL {} ns vs frozen-DRL {} ns over {} pairs",
            stats.skl_relabeled,
            stats.skl_bits_total,
            stats.skl_drl_bits_total,
            stats.skl_bits_ratio().unwrap(),
            stats.skl_query_ns,
            stats.frozen_query_ns,
            stats.skl_pairs_sampled,
        );
    }

    // Per-tier memory: hot resident vs frozen arena vs disk segments,
    // plus the LRU's view of the persisted tier after the query sweep.
    let stats = engine.stats();
    println!(
        "memory: hot {} B resident ({} B accounting) | frozen {} B | \
         disk {} B in {} files ({} B resident, {} loads, {} sheds)",
        stats.hot_resident_bytes,
        stats.hot_bytes(),
        stats.frozen_bytes,
        stats.persisted_bytes,
        stats.segment_files,
        stats.persisted_resident_bytes,
        stats.segment_loads,
        stats.segment_sheds,
    );

    // Machine-readable footprint line: CI uploads this.
    println!("{}", stats.tier_footprint_json());

    drop(engine);
    let _ = std::fs::remove_dir_all(&spill);

    // ---- Act 2: durable ingest — kill the engine, recover the log. ----
    //
    // With a `wal_dir`, every event acknowledged by `flush()` (the
    // group-commit durability barrier) survives a crash: the next build
    // over the same directory replays the log and resurrects the run
    // mid-stream. Simulate the kill with `std::mem::forget` — the
    // engine is never drained and never dropped, exactly the state a
    // SIGKILL leaves behind.
    let wal = std::env::temp_dir().join(format!("wf-tiered-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal);
    let window = std::time::Duration::from_millis(2);
    let (run, exec, cut) = {
        let engine: WfEngine = WfEngine::builder()
            .spec(wf_spec::corpus::bioaid_nonrecursive())
            .ingest_workers(2)
            .wal_dir(&wal)
            .wal_sync(WalSync::GroupCommit { window })
            .build();
        let ctx = Arc::clone(engine.context(SpecId(0)).unwrap());
        let gen = RunGenerator::new(&ctx.spec)
            .target_size(300)
            .generate_run(&mut rng);
        let exec = Execution::deterministic(&gen.graph, &gen.origin);
        let run = engine.open_run(SpecId(0)).unwrap();
        let cut = exec.events().len() * 2 / 3;
        for ev in &exec.events()[..cut] {
            engine
                .ingest(ServiceEvent {
                    run,
                    op: RunOp::Insert(ev.clone()),
                })
                .unwrap();
        }
        engine.flush(); // durability barrier: everything above is on disk
        std::mem::forget(engine); // "SIGKILL" — no drain, no Drop
        (run, exec, cut)
    };

    // A fresh engine over the same WAL dir resurrects the crashed run…
    let engine: WfEngine = WfEngine::builder()
        .spec(wf_spec::corpus::bioaid_nonrecursive())
        .ingest_workers(2)
        .wal_dir(&wal)
        .wal_sync(WalSync::GroupCommit { window })
        .build();
    let stats = engine.stats();
    let h = engine.handle(run).expect("crashed run recovered");
    assert_eq!(h.published(), cut, "every acknowledged event survives");
    // …and the stream continues right where the crash cut it off.
    for ev in &exec.events()[cut..] {
        engine
            .ingest(ServiceEvent {
                run,
                op: RunOp::Insert(ev.clone()),
            })
            .unwrap();
    }
    engine.flush();
    engine.complete_run(run).unwrap();
    let (u, v) = (exec.events()[0].vertex, exec.events()[1].vertex);
    assert_eq!(h.reach(u, v), Some(true));
    println!(
        "{{\"metric\":\"wal_recovery\",\"recovered_runs\":{},\"recovered_records\":{},\"resumed_at\":{},\"events\":{}}}",
        stats.wal_recovered_runs,
        stats.wal_recovered_records,
        cut,
        exec.events().len()
    );
    println!(
        "recovery: {run} resurrected with {cut}/{} acknowledged events, resumed and completed",
        exec.events().len()
    );
    drop(engine);
    let _ = std::fs::remove_dir_all(&wal);

    // ---- Act 3: shed → cold scan → pack GC (the buffer manager). ----
    //
    // A fleet is persisted and packed, then the engine is dropped — the
    // next build starts fully cold, with the packs `mmap`'d at
    // registration. The cross-run scan resolves every blob to a pinned
    // byte range inside the mapping (verify once, zero copies), the
    // replacer sheds pages by `madvise` under the resident budget, and
    // re-heating half the fleet to the **hot** tier strands enough dead
    // blobs for pack GC to rewrite the pack and shrink the directory.
    // The `pack_gc` JSON line is the CI artifact.
    let spill = std::env::temp_dir().join(format!("wf-tiered-bufmgr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let spec = wf_spec::corpus::bioaid_nonrecursive();
    {
        let engine: WfEngine = WfEngine::builder()
            .spec(spec.clone())
            .ingest_workers(2)
            .spill_dir(&spill)
            .build();
        for _ in 0..48 {
            let run = engine.open_run(SpecId(0)).unwrap();
            let gen = RunGenerator::new(&engine.context(SpecId(0)).unwrap().spec)
                .target_size(120)
                .generate_run(&mut rng);
            let exec = Execution::deterministic(&gen.graph, &gen.origin);
            for ev in exec.events() {
                engine.submit(run, ev).unwrap();
            }
            engine.complete_run(run).unwrap();
            engine.persist_run(run).unwrap();
        }
        engine.compact().expect("spill dir configured");
    } // dropped: nothing resident, nothing decoded — a true cold start

    let engine: WfEngine = WfEngine::builder()
        .spec(spec)
        .spill_dir(&spill)
        .max_resident_bytes(64 * 1024)
        .build();
    let cold = std::time::Instant::now();
    let ids = engine.query().completed().run_ids();
    let hits = engine
        .query()
        .completed()
        .runs_reaching_named_from_source(probe);
    let cold_ms = cold.elapsed().as_secs_f64() * 1e3;
    let stats = engine.stats();
    println!(
        "cold scan: {} persisted runs in {cold_ms:.1} ms ({} hits) — \
         {} pack pins, {} owned fault-ins, {} B mapped",
        ids.len(),
        hits.len(),
        stats.pack_pins,
        stats.segment_loads,
        stats.mapped_bytes,
    );

    // Sustained traffic on half the fleet: promote those runs all the
    // way back to hot, stranding their pack blobs as dead bytes…
    for run in &ids[..ids.len() / 2] {
        engine
            .reheat_run_hot(*run)
            .expect("persisted run re-heats hot");
    }
    let dead = engine.stats().pack_dead_bytes;
    // …then let pack GC rewrite the pack without them.
    let disk_before: u64 = std::fs::read_dir(&spill)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "wfseg"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    let gc = engine.gc_packs().expect("spill dir configured");
    println!("{}", gc.json());
    let disk_after: u64 = std::fs::read_dir(&spill)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "wfseg"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    assert!(gc.dead_bytes_reclaimed > 0, "half the pack was dead");
    assert!(disk_after < disk_before, "GC shrinks the spill dir");
    println!(
        "pack GC: {dead} dead B across packs → rewrote {} pack(s), \
         moved {} runs, disk {disk_before} B → {disk_after} B",
        gc.packs_rewritten, gc.runs_moved,
    );
    // Survivors still answer after the rewrite, hot returnees from
    // their rebuilt indexes.
    for run in &ids {
        assert!(engine.run_tier(*run).is_ok());
    }
    println!("{}", engine.stats().tier_footprint_json());
    drop(engine);
    let _ = std::fs::remove_dir_all(&spill);

    // ---- Act 4: causal tracing, EXPLAIN, and the stall watchdog. ----
    //
    // A fully instrumented engine: a zero slow-op threshold so every
    // span lands in the ring, a 25ms watchdog refreshing `health()`,
    // and a WAL so the EXPLAIN barrier is real. One run is persisted
    // cold, then a profiled fleet query pays the fault-in on stage —
    // the `QueryProfile` table shows where the time went, and the whole
    // causal forest exports as Chrome `trace_event` JSON
    // (`chrome://tracing` / Perfetto loads it) into `WF_OBS_DUMP_DIR`.
    let spill = std::env::temp_dir().join(format!("wf-tiered-trace-{}", std::process::id()));
    let wal = spill.join("wal");
    let _ = std::fs::remove_dir_all(&spill);
    let engine: WfEngine = WfEngine::builder()
        .spec(wf_spec::corpus::bioaid_nonrecursive())
        .ingest_workers(2)
        .spill_dir(&spill)
        .wal_dir(&wal)
        .slow_op_threshold(std::time::Duration::ZERO)
        .trace_capacity(4096)
        .watchdog(std::time::Duration::from_millis(25))
        .build();
    let ctx = Arc::clone(engine.context(SpecId(0)).unwrap());
    let mut probe = None;
    let mut cold_run = None;
    for i in 0..4 {
        let run = engine.open_run(SpecId(0)).unwrap();
        let gen = RunGenerator::new(&ctx.spec)
            .target_size(200)
            .generate_run(&mut rng);
        let exec = Execution::deterministic(&gen.graph, &gen.origin);
        for ev in exec.events() {
            engine
                .ingest(ServiceEvent {
                    run,
                    op: RunOp::Insert(ev.clone()),
                })
                .unwrap();
        }
        engine.flush();
        engine.complete_run(run).unwrap();
        probe.get_or_insert(exec.events()[1].name);
        if i == 0 {
            engine.persist_run(run).unwrap();
            cold_run = Some(run);
        }
    }
    let explained = engine
        .query()
        .completed()
        .explain()
        .runs_reaching_named_from_source(probe.unwrap());
    assert!(
        explained.value.contains(&cold_run.unwrap()),
        "the persisted run answers under EXPLAIN"
    );
    print!("{}", explained.profile.table());
    println!("{}", explained.profile.json());
    println!("health: {:?}", engine.health());

    let chrome = engine.trace_chrome();
    if let Some(dir) = std::env::var_os("WF_OBS_DUMP_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create WF_OBS_DUMP_DIR");
        let path = dir.join("chrome-trace.json");
        std::fs::write(&path, &chrome).expect("write chrome-trace.json");
        // The raw ring too, so `scripts/obsdump --tree` (and --chrome)
        // can re-render the same forest offline.
        let trace: String = engine
            .trace_dump()
            .iter()
            .map(|e| e.json() + "\n")
            .collect();
        std::fs::write(dir.join("trace.jsonl"), trace).expect("write trace.jsonl");
        println!("chrome trace: {} bytes → {}", chrome.len(), path.display());
    } else {
        println!(
            "chrome trace: {} bytes (set WF_OBS_DUMP_DIR to write chrome-trace.json)",
            chrome.len()
        );
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&spill);

    // ---- Act 5: standing queries under tier churn (sub-soak). ----
    //
    // Subscribers registered *before any ingest* watch a fleet soak
    // through ingest → complete → freeze → persist → compact → re-heat
    // → pack GC, while a consumer thread drains concurrently. The
    // unscoped subscriber's `Added` stream must equal the pull query's
    // answer exactly — no duplicates, no drops, no spurious
    // retractions — and the Frozen-scoped subscriber must net out to
    // exactly the frozen tier's final contents after the churn. The
    // `sub_soak` JSON line (deltas delivered, pull-oracle count, max
    // completion lag seen by the consumer) is the CI artifact.
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    let spill = std::env::temp_dir().join(format!("wf-tiered-subsoak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let engine: WfEngine = WfEngine::builder()
        .spec(wf_spec::corpus::bioaid_nonrecursive())
        .ingest_workers(2)
        .spill_dir(&spill)
        .sub_queue_capacity(1 << 14)
        .build();
    let ctx = Arc::clone(engine.context(SpecId(0)).unwrap());
    // Pre-generate the fleet so the probe name exists before the
    // subscriptions do (mid-stream registration is covered by tests;
    // the soak exercises the from-the-start path).
    let execs: Vec<Execution> = (0..24)
        .map(|_| {
            let gen = RunGenerator::new(&ctx.spec)
                .target_size(120)
                .generate_run(&mut rng);
            Execution::deterministic(&gen.graph, &gen.origin)
        })
        .collect();
    let probe = execs[0].events()[1].name;
    let sub_all = engine.subscribe(SubPredicate::vertices_named(probe));
    let sub_frozen = engine.subscribe(SubPredicate::vertices_named(probe).tier(Tier::Frozen));

    let stamps: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let done = AtomicBool::new(false);
    let (total, added, removed, completions, max_lag_ns) = std::thread::scope(|s| {
        let consumer = s.spawn(|| {
            let (mut total, mut added, mut removed, mut completions) = (0u64, 0u64, 0u64, 0u64);
            let mut max_lag_ns = 0u64;
            loop {
                match sub_all.recv_timeout(Duration::from_millis(5)) {
                    Some(Delta::Added { .. }) => {
                        total += 1;
                        added += 1;
                    }
                    Some(Delta::Removed { .. }) => {
                        total += 1;
                        removed += 1;
                    }
                    Some(Delta::RunCompleted { run }) => {
                        total += 1;
                        completions += 1;
                        let at = stamps.lock().unwrap()[&run.0];
                        max_lag_ns = max_lag_ns.max(at.elapsed().as_nanos() as u64);
                    }
                    Some(Delta::Lagged { dropped }) => {
                        panic!("soak queue must not overflow (dropped {dropped})")
                    }
                    None => {
                        if sub_all.is_closed()
                            || (done.load(Ordering::Acquire) && sub_all.pending() == 0)
                        {
                            break;
                        }
                    }
                }
            }
            (total, added, removed, completions, max_lag_ns)
        });

        // The soak itself: ingest + complete the fleet, then churn the
        // tiers underneath the live subscriptions.
        let runs: Vec<RunId> = execs
            .iter()
            .map(|exec| {
                let run = engine.open_run(SpecId(0)).unwrap();
                for ev in exec.events() {
                    engine.submit(run, ev).unwrap();
                }
                stamps.lock().unwrap().insert(run.0, Instant::now());
                engine.complete_run(run).unwrap();
                run
            })
            .collect();
        for (i, &run) in runs.iter().enumerate() {
            match i % 3 {
                0 => {} // stays hot
                1 => engine.freeze_run(run).unwrap(),
                _ => engine.persist_run(run).unwrap(),
            }
        }
        engine.compact().expect("spill dir configured");
        // Re-heat half the persisted runs all the way to hot — their
        // pack blobs go dead — then GC the packs under the live subs.
        let persisted: Vec<RunId> = runs
            .iter()
            .copied()
            .filter(|&r| engine.run_tier(r).unwrap() == Tier::Persisted)
            .collect();
        for run in &persisted[..persisted.len() / 2] {
            engine.reheat_run_hot(*run).unwrap();
        }
        let gc = engine.gc_packs().expect("spill dir configured");
        assert!(gc.dead_bytes_reclaimed > 0, "re-heats strand dead blobs");
        done.store(true, Ordering::Release);
        consumer.join().unwrap()
    });

    // Pull-side oracle: the same predicate answered by a full rescan.
    // Registered-before-first-event subscriptions must agree exactly.
    let oracle: usize = engine
        .query()
        .vertices_named(probe)
        .iter()
        .map(|(_, vs)| vs.len())
        .sum();
    assert_eq!(added as usize, oracle, "push stream == pull rescan");
    assert_eq!(removed, 0, "nothing was evicted, nothing retracts");
    assert_eq!(completions, 24, "every completion is delivered");

    // The Frozen-scoped stream nets out to the frozen tier's final
    // contents: freezes added witnesses, persists/re-heats of runs that
    // were never frozen added nothing.
    let (mut f_added, mut f_removed) = (0i64, 0i64);
    while let Some(d) = sub_frozen.try_recv() {
        match d {
            Delta::Added { .. } => f_added += 1,
            Delta::Removed { .. } => f_removed += 1,
            Delta::RunCompleted { .. } => {}
            Delta::Lagged { dropped } => panic!("frozen sub overflowed (dropped {dropped})"),
        }
    }
    let frozen_oracle: usize = engine
        .query()
        .tier(Tier::Frozen)
        .vertices_named(probe)
        .iter()
        .map(|(_, vs)| vs.len())
        .sum();
    assert_eq!(
        (f_added - f_removed) as usize,
        frozen_oracle,
        "tier-scoped stream nets to the frozen tier's final contents"
    );

    println!(
        "{{\"metric\":\"sub_soak\",\"deltas\":{total},\"oracle\":{oracle},\
         \"max_lag_ns\":{max_lag_ns},\"frozen_net\":{},\"frozen_oracle\":{frozen_oracle}}}",
        f_added - f_removed
    );
    println!(
        "sub-soak: {added} adds + {completions} completions delivered across the churn, \
         max completion lag {:.2} ms",
        max_lag_ns as f64 / 1e6
    );
    drop(sub_all);
    drop(sub_frozen);
    drop(engine);
    let _ = std::fs::remove_dir_all(&spill);
}
