//! Streaming provenance: answer reachability queries **while the
//! workflow is still running** — the paper's motivating scenario
//! (Section 1: "scientific workflows can take a long time to execute and
//! users may want to ask provenance queries over partial executions").
//!
//! A BioAID-like pipeline executes module by module; every executed
//! module is labeled immediately (execution-based scheme, §5.3), and a
//! monitoring loop interleaves provenance queries such as "was this
//! intermediate result derived from that input?" long before the run
//! completes.
//!
//! ```text
//! cargo run --example streaming_provenance
//! ```

use rand::rngs::StdRng;
use wf_provenance::prelude::*;

fn main() {
    let spec = wf_spec::corpus::bioaid();
    let skeleton = TclSpecLabels::build(&spec);

    // Simulate one execution of the pipeline (≈1500 module invocations),
    // streamed in a random topological order — as a workflow engine
    // would report them.
    let mut rng = StdRng::seed_from_u64(2011);
    let run = RunGenerator::new(&spec)
        .target_size(1500)
        .generate_run(&mut rng);
    let execution = Execution::random(&run.graph, &run.origin, &mut rng);
    println!(
        "executing BioAID-like pipeline: {} module invocations",
        execution.len()
    );

    // The on-the-fly labeler. Name-based inference works because the
    // spec satisfies §5.3's Conditions 1–2 (validated here).
    let mut labeler = ExecutionLabeler::new(&spec, &skeleton).expect("conditions hold");

    let mut monitored: Vec<VertexId> = Vec::new();
    let mut queries_answered = 0usize;
    let mut positive = 0usize;
    for (i, ev) in execution.events().iter().enumerate() {
        labeler.insert(ev).expect("valid execution");
        // Keep a sample of "interesting data products" to monitor.
        if i % 97 == 0 {
            monitored.push(ev.vertex);
        }
        // Every 200 steps, the scientist asks: which monitored products
        // fed into the most recent one?
        if i % 200 == 199 {
            let newest = ev.vertex;
            let deps = monitored
                .iter()
                .filter(|&&m| labeler.reaches(m, newest).unwrap())
                .count();
            queries_answered += monitored.len();
            positive += deps;
            println!(
                "  after {:4} steps: {:2}/{} monitored products are ancestors of the newest output",
                i + 1,
                deps,
                monitored.len()
            );
        }
    }

    // Cross-check every mid-run answer class once more at the end
    // against ground truth on the final graph (labels never changed, so
    // any mid-run answer equals the final answer for the same pair —
    // Remark 1).
    let oracle = wf_graph::reach::ReachOracle::new(&run.graph);
    for &a in &monitored {
        for &b in &monitored {
            assert_eq!(labeler.reaches(a, b).unwrap(), oracle.reaches(a, b));
        }
    }
    println!(
        "run complete: {queries_answered} live queries answered ({positive} positive), \
         all verified against ground truth"
    );

    // Label economics: the whole run was labeled with short labels.
    let max_bits = run
        .graph
        .vertices()
        .map(|v| labeler.label_bits(v).unwrap())
        .max()
        .unwrap();
    let n = run.graph.vertex_count();
    println!(
        "max label: {max_bits} bits for n = {n} (log2(n) = {:.1}; naive dynamic TCL would need {} bits)",
        (n as f64).log2(),
        n - 1
    );
}
