//! Streaming provenance: answer reachability queries **while the
//! workflow is still running** — the paper's motivating scenario
//! (Section 1: "scientific workflows can take a long time to execute and
//! users may want to ask provenance queries over partial executions").
//!
//! A BioAID-like pipeline executes module by module. A producer thread
//! streams each execution event into the engine's **channel-fed ingest
//! pool** the moment it "happens" ([`WfEngine::ingest`] returns as soon
//! as the event is enqueued), every executed module is labeled on
//! arrival (execution-based scheme, §5.3), and the scientist's
//! monitoring loop — holding nothing but a cloned [`RunHandle`] —
//! interleaves provenance queries such as "was this intermediate result
//! derived from that input?" long before the run completes.
//!
//! ```text
//! cargo run --example streaming_provenance
//! ```

use rand::rngs::StdRng;
use wf_provenance::prelude::*;

fn main() {
    // Engine over one specification; builder-only configuration.
    let engine: WfEngine = WfEngine::builder()
        .spec(wf_spec::corpus::bioaid())
        .ingest_workers(1) // one run → one writer; more would idle
        .queue_capacity(256)
        .build();
    let spec = SpecId(0);

    // Simulate one execution of the pipeline (≈1500 module invocations),
    // streamed in a random topological order — as a workflow engine
    // would report them.
    let mut rng = StdRng::seed_from_u64(2011);
    let run_gen = RunGenerator::new(&engine.context(spec).unwrap().spec)
        .target_size(1500)
        .generate_run(&mut rng);
    let execution = Execution::random(&run_gen.graph, &run_gen.origin, &mut rng);
    println!(
        "executing BioAID-like pipeline: {} module invocations",
        execution.len()
    );

    let run = engine.open_run(spec).expect("spec in catalog");
    // The monitor's view of the run: a cloneable, lock-free handle.
    let monitor = engine.handle(run).expect("run registered");

    let mut monitored: Vec<VertexId> = Vec::new();
    let mut queries_answered = 0usize;
    let mut positive = 0usize;
    std::thread::scope(|scope| {
        // Producer: the "workflow engine" reporting events as they
        // happen. Fire-and-forget enqueue; the bounded queue applies
        // backpressure if labeling falls behind.
        let engine = &engine;
        let producer_events = execution.events();
        scope.spawn(move || {
            for ev in producer_events {
                engine
                    .ingest(ServiceEvent {
                        run,
                        op: RunOp::Insert(ev.clone()),
                    })
                    .expect("valid execution");
            }
            engine.complete_run(run).expect("was live");
        });

        // The scientist, on the main thread: watch labels appear and ask
        // lineage questions mid-run, entirely from published labels.
        let events = execution.events();
        let mut asked_at = 0usize;
        while monitor.status() == RunStatus::Live || asked_at < events.len() {
            let published = monitor.published();
            // Keep a sample of "interesting data products" to monitor.
            while asked_at < published.min(events.len()) {
                if asked_at.is_multiple_of(97) {
                    monitored.push(events[asked_at].vertex);
                }
                // Every 200 applied events: which monitored products fed
                // into the most recent one?
                if asked_at % 200 == 199 {
                    let newest = events[asked_at].vertex;
                    let deps = monitored
                        .iter()
                        .filter(|&&m| monitor.reach(m, newest) == Some(true))
                        .count();
                    queries_answered += monitored.len();
                    positive += deps;
                    println!(
                        "  after {:4} events: {:2}/{} monitored products are ancestors of the newest output",
                        asked_at + 1,
                        deps,
                        monitored.len()
                    );
                }
                asked_at += 1;
            }
            std::thread::yield_now();
        }
    });

    // Cross-check every mid-run answer class once more at the end
    // against ground truth on the final graph (labels never changed, so
    // any mid-run answer equals the final answer for the same pair —
    // Remark 1).
    let watermark = engine.flush();
    let oracle = wf_graph::reach::ReachOracle::new(&run_gen.graph);
    for &a in &monitored {
        for &b in &monitored {
            assert_eq!(monitor.reach(a, b), Some(oracle.reaches(a, b)));
        }
    }
    println!(
        "run complete (flush watermark {watermark}): {queries_answered} live queries answered \
         ({positive} positive), all verified against ground truth"
    );

    // Label economics: the whole run was labeled with short labels.
    let max_bits = run_gen
        .graph
        .vertices()
        .map(|v| monitor.label_bits(v).unwrap())
        .max()
        .unwrap();
    let n = run_gen.graph.vertex_count();
    println!(
        "max label: {max_bits} bits for n = {n} (log2(n) = {:.1}; naive dynamic TCL would need {} bits)",
        (n as f64).log2(),
        n - 1
    );
    println!("engine: {}", engine.stats());
}
