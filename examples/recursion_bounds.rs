//! Recursion and the limits of compact dynamic labeling (Sections 3 & 6).
//!
//! * The Figure-6 grammar (two *parallel* recursive vertices) forces
//!   Ω(n)-bit labels for any dynamic scheme (Theorems 1 & 5): watch DRL's
//!   labels grow linearly on adversarially deep derivations.
//! * The Figure-12 grammar is also nonlinear, but its runs are simple
//!   paths — a trivial position index is a compact *execution-based*
//!   scheme (Example 15), illustrating why the execution-based
//!   characterization is left open.
//!
//! ```text
//! cargo run --example recursion_bounds
//! ```

use wf_provenance::prelude::*;
use wf_run::DerivationStep;
use wf_spec::grammar::Production;

/// Expand the newest composite `k` times with the recursive body, then
/// close everything with base cases — the deep-derivation shape of the
/// Theorem-1 proof.
fn deep_run<'s>(
    spec: &'s wf_spec::Specification,
    skeleton: &'s TclSpecLabels,
    k: usize,
) -> DerivationLabeler<'s, TclSpecLabels> {
    let a = spec.name_id("A").unwrap();
    let rec = spec.implementations(a)[0];
    let base = spec.implementations(a)[1];
    let mut labeler =
        DerivationLabeler::with_mode(spec, skeleton, RecursionMode::CompressFirst).unwrap();
    for _ in 0..k {
        let u = *labeler.builder().composite_vertices().iter().max().unwrap();
        labeler
            .apply(&DerivationStep {
                target: u,
                production: Production::plain(rec),
            })
            .unwrap();
    }
    while !labeler.builder().is_complete() {
        let u = labeler.builder().composite_vertices()[0];
        labeler
            .apply(&DerivationStep {
                target: u,
                production: Production::plain(base),
            })
            .unwrap();
    }
    labeler
}

fn max_bits(l: &DerivationLabeler<'_, TclSpecLabels>) -> usize {
    l.graph()
        .vertices()
        .map(|v| l.label_bits(v).unwrap())
        .max()
        .unwrap()
}

fn main() {
    // --- Theorem 1: the Figure-6 grammar needs Ω(n) bits -------------
    let fig6 = wf_spec::corpus::theorem1();
    assert_eq!(fig6.grammar().classify(), RecursionClass::ParallelRecursive);
    let skeleton6 = TclSpecLabels::build(&fig6);
    println!("Figure-6 grammar (parallel recursion): labels grow linearly");
    println!(
        "{:>5} {:>7} {:>9} {:>8}",
        "k", "n=5k+4", "max_bits", "bits/n"
    );
    for k in [8usize, 32, 128] {
        let labeler = deep_run(&fig6, &skeleton6, k);
        let n = labeler.graph().vertex_count();
        let mb = max_bits(&labeler);
        println!("{k:>5} {n:>7} {mb:>9} {:>8.2}", mb as f64 / n as f64);
        // Correctness never degrades, only compactness does.
        let oracle = wf_graph::reach::ReachOracle::new(labeler.graph());
        for a in labeler.graph().vertices().step_by(7) {
            for b in labeler.graph().vertices().step_by(5) {
                assert_eq!(labeler.reaches(a, b).unwrap(), oracle.reaches(a, b));
            }
        }
    }

    // --- Example 15: Figure-12's path runs --------------------------
    let fig12 = wf_spec::corpus::fig12();
    assert_eq!(fig12.grammar().classify(), RecursionClass::SeriesRecursive);
    let skeleton12 = TclSpecLabels::build(&fig12);
    println!("\nFigure-12 grammar (series recursion): runs are simple paths");
    println!(
        "{:>5} {:>6} {:>12} {:>9}",
        "k", "n", "index_bits", "DRL_bits"
    );
    for k in [8usize, 32, 128] {
        let labeler = deep_run(&fig12, &skeleton12, k);
        let g = labeler.graph();
        let n = g.vertex_count();
        assert!(
            g.vertices()
                .all(|v| g.out_neighbors(v).len() <= 1 && g.in_neighbors(v).len() <= 1),
            "every run of this grammar is a simple path"
        );
        // Example 15's compact execution-based scheme: label the i-th
        // vertex with i; reachability = index comparison.
        let index_bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
        println!("{k:>5} {n:>6} {index_bits:>12} {:>9}", max_bits(&labeler));
    }
    println!(
        "\nThe index labels stay logarithmic while the derivation-based adaptation \
         pays for the recursion depth —\nthe gap behind the paper's open problem \
         (execution-based characterization, §8)."
    );
}
