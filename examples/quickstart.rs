//! Quickstart: the paper's running example (Figures 2–3, Example 11).
//!
//! Builds the Figure-2 specification, derives the Figure-3 run step by
//! step — labeling every vertex the moment it appears — and answers the
//! reachability queries of Example 11 from labels alone.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wf_provenance::prelude::*;
use wf_run::DerivationStep;
use wf_spec::grammar::Production;

fn main() {
    // The Figure-2 specification: loop L, fork F, and the linear
    // recursion A → C → A.
    let spec = wf_spec::corpus::running_example();
    let grammar = spec.grammar();
    println!(
        "specification: {} graphs, class {:?}",
        spec.graph_count(),
        grammar.classify()
    );
    assert_eq!(grammar.classify(), RecursionClass::LinearRecursive);

    // Label the specification once (skeleton labels, §5.1)…
    let skeleton = TclSpecLabels::build(&spec);

    // …then label the Figure-3 run on-the-fly as it derives.
    let mut labeler = DerivationLabeler::new(&spec, &skeleton);
    let by_name = |labeler: &DerivationLabeler<'_, TclSpecLabels>, n: &str| {
        labeler
            .graph()
            .find_by_name(spec.name_id(n).unwrap())
            .unwrap_or_else(|| panic!("vertex named {n}"))
    };
    let impl_of = |n: &str, i: usize| spec.implementations(spec.name_id(n).unwrap())[i];

    // u1: L := S(h1, h1) — the loop body runs twice in series.
    let u1 = by_name(&labeler, "L");
    labeler
        .apply(&DerivationStep {
            target: u1,
            production: Production::replicated(impl_of("L", 0), 2),
        })
        .unwrap();
    // u2: F := P(h2, h2) — the fork body runs twice in parallel.
    let u2 = by_name(&labeler, "F");
    labeler
        .apply(&DerivationStep {
            target: u2,
            production: Production::replicated(impl_of("F", 0), 2),
        })
        .unwrap();
    // One branch recurses: A := h3; B := h5; C := h6; inner A := h4.
    for (name, which) in [("A", 0), ("B", 0), ("C", 0), ("A", 1)] {
        let u = by_name(&labeler, name);
        labeler
            .apply(&DerivationStep {
                target: u,
                production: Production::plain(impl_of(name, which)),
            })
            .unwrap();
    }
    // The remaining composites take base cases / single copies.
    while !labeler.builder().is_complete() {
        let u = labeler.builder().composite_vertices()[0];
        let name = spec.name_str(labeler.graph().name(u)).to_string();
        let prod = match name.as_str() {
            "F" => Production::replicated(impl_of("F", 0), 1),
            "A" => Production::plain(impl_of("A", 1)),
            other => Production::plain(spec.implementations(spec.name_id(other).unwrap())[0]),
        };
        labeler
            .apply(&DerivationStep {
                target: u,
                production: prod,
            })
            .unwrap();
    }
    let g = labeler.graph();
    println!(
        "run complete: {} vertices, {} edges, two-terminal: {}",
        g.vertex_count(),
        g.edge_count(),
        g.is_two_terminal()
    );

    // Example 11's queries, from labels alone (Algorithm 4). We address
    // vertices by their module names; s5/s6 exist once in this run.
    let queries = [
        (
            "s5",
            "s1",
            "v5 ; v16: distinct loop copies — LCA is an L node",
        ),
        ("s5", "s6", "v5 ; v8: recursion chain — LCA is a R node"),
        ("s5", "t3", "v5 ; v11: same instance — skeleton query"),
    ];
    for (a, b, what) in queries {
        let va = g.all_by_name(spec.name_id(a).unwrap());
        let vb = g.all_by_name(spec.name_id(b).unwrap());
        // For loop copies pick the first copy as source, second as sink.
        let (x, y) = (va[0], *vb.last().unwrap());
        let fast = labeler.reaches(x, y).unwrap();
        let truth = wf_graph::reach::reaches(g, x, y);
        assert_eq!(fast, truth);
        println!("  {a} ; {b}? {fast:5}  ({what})");
        // Show the label that answered it.
        let label = labeler.label(x).unwrap();
        println!(
            "    φ({a}) has {} entries, {} bits",
            label.depth(),
            label.bit_len(labeler.skl_bits())
        );
    }

    // Fork branches are mutually unreachable (F-node case).
    let s3s = g.all_by_name(spec.name_id("s2").unwrap());
    if s3s.len() >= 2 {
        assert_eq!(labeler.reaches(s3s[0], s3s[1]), Some(false));
        assert_eq!(labeler.reaches(s3s[1], s3s[0]), Some(false));
        println!("  fork branches s2#1 and s2#2 are parallel: unreachable both ways");
    }
    println!("all answers verified against BFS ground truth");
}
