#!/usr/bin/env python3
"""Compare two BENCH_*.json perf-trajectory artifacts and emit a delta table.

Usage: trajectory_delta.py CURRENT.json [PREVIOUS.json]

Each artifact is JSON-lines: bench lines ({"bench": ..., "mean_ns": ...,
"elements_per_sec": ...}), the tier_footprint line and the compaction
line, as printed by `cargo bench -p wf-bench --bench service`.

Writes a markdown table (events/s, ns/query, bytes/tier, file counts) to
$GITHUB_STEP_SUMMARY (stdout otherwise). Soft regression gate: exits 1
only when an ingest or reach throughput metric drops more than
GATE_DROP_PCT (default 25%) versus the previous artifact — noise warns,
cliffs fail. No previous artifact means nothing to gate against.
"""

import json
import os
import sys

GATE_DROP_PCT = float(os.environ.get("GATE_DROP_PCT", "25"))
WARN_DROP_PCT = float(os.environ.get("WARN_DROP_PCT", "5"))

# Metrics whose *throughput* regression fails the job (substring match on
# the bench id). Everything else is informational.
GATED = ("service_tiering/ingest_freeze", "service_tiering/reach_across_tiers")


def load(path):
    """Parse one artifact into {key: {metric: value}} keyed by bench id."""
    out = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = rec.get("bench") or rec.get("metric")
            if key:
                out[key] = rec
    return out


def fmt(value):
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}"


def delta_pct(prev, cur):
    if prev in (None, 0) or cur is None:
        return None
    return (cur - prev) / prev * 100.0


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    current = load(sys.argv[1])
    previous = load(sys.argv[2]) if len(sys.argv) > 2 and os.path.exists(sys.argv[2]) else {}

    rows = []
    failures = []
    warnings = []

    # Bench lines: compare throughput where annotated, mean_ns otherwise.
    for key in sorted(k for k in current if "bench" in current[k]):
        cur, prev = current[key], previous.get(key, {})
        for metric, higher_is_better in (("elements_per_sec", True), ("mean_ns", False)):
            c, p = cur.get(metric), prev.get(metric)
            if c is None:
                continue
            d = delta_pct(p, c)
            rows.append((f"{key} ({metric})", p, c, d))
            if d is None:
                continue
            drop = -d if higher_is_better else d
            label = f"{key} {metric}: {d:+.1f}%"
            if metric == "elements_per_sec" and any(g in key for g in GATED):
                if drop > GATE_DROP_PCT:
                    failures.append(label)
                elif drop > WARN_DROP_PCT:
                    warnings.append(label)
            elif drop > WARN_DROP_PCT:
                warnings.append(label)

    # Footprint + compaction lines: bytes/tier and file counts.
    for key, fields in (
        ("tier_footprint", ("hot_bytes", "frozen_bytes", "persisted_bytes",
                            "persisted_resident_bytes", "segment_files",
                            "skl_bits", "skl_drl_bits")),
        ("compaction", ("files_before", "files_after", "bytes_after", "runs_packed")),
    ):
        cur, prev = current.get(key, {}), previous.get(key, {})
        for f in fields:
            if f in cur:
                rows.append((f"{key}.{f}", prev.get(f), cur.get(f), delta_pct(prev.get(f), cur.get(f))))

    lines = ["## Perf trajectory", ""]
    if not previous:
        lines.append("_No previous artifact found — first data point, nothing to gate against._")
        lines.append("")
    lines.append("| metric | previous | current | Δ% |")
    lines.append("|---|---:|---:|---:|")
    for name, p, c, d in rows:
        lines.append(f"| `{name}` | {fmt(p)} | {fmt(c)} | {'—' if d is None else f'{d:+.1f}%'} |")
    lines.append("")
    if failures:
        lines.append(f"**GATE FAILED** (>{GATE_DROP_PCT:.0f}% throughput drop): " + "; ".join(failures))
    elif warnings:
        lines.append("Soft warnings: " + "; ".join(warnings))
    else:
        lines.append("No regressions beyond noise thresholds.")
    report = "\n".join(lines) + "\n"

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(report)
    print(report)

    for w in warnings:
        print(f"::warning::perf drop (soft): {w}")
    if failures:
        for f in failures:
            print(f"::error::perf cliff (>{GATE_DROP_PCT:.0f}%): {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
