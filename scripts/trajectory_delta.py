#!/usr/bin/env python3
"""Compare BENCH_*.json perf-trajectory artifacts and emit a delta table.

Usage: trajectory_delta.py CURRENT.json [PREVIOUS.json ...]

Each artifact is JSON-lines: bench lines ({"bench": ..., "mean_ns": ...,
"elements_per_sec": ...}), latency-percentile lines ({"metric":
"latency", "name": ..., "p50_ns": ..., "p99_ns": ...}), the
tier_footprint line, the compaction line, the observability lines
(obs_overhead, explain_overhead, watchdog), the buffer-manager lines
(service_cold_scan, pack_gc), the WAL lines (durable_ingest,
wal_recovery_ms), and the standing-query line (standing_query:
delta-delivery throughput, completion-lag percentiles and the
idle-subscription overhead ratio), as printed by
`cargo bench -p wf-bench --bench service`.

The newest PREVIOUS (last argument) anchors the delta columns and the
regression gate; when several PREVIOUS artifacts are given (oldest
first), a history section tracks the 1/16/256-run service_ingest /
service_query points across all of them.

Writes a markdown table (events/s, ns/query, latency percentiles,
bytes/tier, file counts) to $GITHUB_STEP_SUMMARY (stdout otherwise).
Soft regression gate: exits 1 only when an ingest or reach throughput
metric drops — or a gated p99 latency rises — more than GATE_DROP_PCT
(default 25%) versus the previous artifact — noise warns, cliffs fail.
No previous artifact means nothing to gate against.
"""

import json
import os
import sys

GATE_DROP_PCT = float(os.environ.get("GATE_DROP_PCT", "25"))
WARN_DROP_PCT = float(os.environ.get("WARN_DROP_PCT", "5"))

# Metrics whose *throughput* regression fails the job (substring match on
# the bench id). Everything else is informational.
GATED = ("service_tiering/ingest_freeze", "service_tiering/reach_across_tiers")

# Latency families whose *p99 rise* fails the job (exact key match).
LATENCY_GATED = ("latency/wf_reach_ns", "latency/wf_ingest_apply_ns")

# Bench ids tracked across every provided artifact (the 1/16/256-run
# trajectory dashboard).
HISTORY_FLEETS = (1, 16, 256)
HISTORY_BENCHES = tuple(
    f"{group}/{point}/{n}"
    for group, point in (
        ("service_ingest", "runs"),
        ("service_ingest", "pipelined_runs"),
        ("service_query", "runs"),
        ("service_query", "cross_run_source_scan"),
    )
    for n in HISTORY_FLEETS
)


def load(path):
    """Parse one artifact into {key: {metric: value}} keyed by bench id."""
    out = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = rec.get("bench") or rec.get("metric")
            if key == "latency" and rec.get("name"):
                # One line per histogram family; key them apart.
                key = f"latency/{rec['name']}"
            if key:
                out[key] = rec
    return out


def fmt(value):
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}"


def delta_pct(prev, cur):
    if prev in (None, 0) or cur is None:
        return None
    return (cur - prev) / prev * 100.0


def stamp_of(path, artifact):
    """Short column label for one artifact: its date stamp or basename."""
    for rec in artifact.values():
        if rec.get("date"):
            return rec["date"]
        if rec.get("commit"):
            return rec["commit"][:9]
    return os.path.basename(path)


def history_section(paths, artifacts):
    """events/s for the 1/16/256-run points across every artifact."""
    lines = ["### 1/16/256-run history (events/s)", ""]
    labels = [stamp_of(p, a) for p, a in zip(paths, artifacts)]
    lines.append("| bench | " + " | ".join(labels) + " |")
    lines.append("|---|" + "---:|" * len(labels))
    for bench in HISTORY_BENCHES:
        cells = [fmt(a.get(bench, {}).get("elements_per_sec")) for a in artifacts]
        if all(c == "—" for c in cells):
            continue
        lines.append(f"| `{bench}` | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    cur_path = sys.argv[1]
    prev_paths = [p for p in sys.argv[2:] if os.path.exists(p)]
    current = load(cur_path)
    previous = load(prev_paths[-1]) if prev_paths else {}

    rows = []
    failures = []
    warnings = []

    # Bench lines: compare throughput where annotated, mean_ns otherwise.
    for key in sorted(k for k in current if "bench" in current[k]):
        cur, prev = current[key], previous.get(key, {})
        for metric, higher_is_better in (("elements_per_sec", True), ("mean_ns", False)):
            c, p = cur.get(metric), prev.get(metric)
            if c is None:
                continue
            d = delta_pct(p, c)
            rows.append((f"{key} ({metric})", p, c, d))
            if d is None:
                continue
            drop = -d if higher_is_better else d
            label = f"{key} {metric}: {d:+.1f}%"
            if metric == "elements_per_sec" and any(g in key for g in GATED):
                if drop > GATE_DROP_PCT:
                    failures.append(label)
                elif drop > WARN_DROP_PCT:
                    warnings.append(label)
            elif drop > WARN_DROP_PCT:
                warnings.append(label)

    # Latency lines: per-operation percentiles out of the engine's own
    # histograms. A gated family's p99 rising past the gate fails.
    for key in sorted(k for k in current if k.startswith("latency/")):
        cur, prev = current[key], previous.get(key, {})
        for metric in ("p50_ns", "p99_ns"):
            c, p = cur.get(metric), prev.get(metric)
            if c is None:
                continue
            d = delta_pct(p, c)
            rows.append((f"{key} ({metric})", p, c, d))
            if d is None or metric != "p99_ns":
                continue
            label = f"{key} {metric}: {d:+.1f}%"
            if key in LATENCY_GATED:
                if d > GATE_DROP_PCT:
                    failures.append(label)
                elif d > WARN_DROP_PCT:
                    warnings.append(label)
            elif d > WARN_DROP_PCT:
                warnings.append(label)

    # WAL durable-ingest line: the eps_* fields are throughputs (higher
    # is better). The group-commit point is the headline durable config,
    # so it carries the same soft gate as the tiering benches; the
    # fsync-per-event point is too noisy to gate and stays informational.
    cur, prev = current.get("durable_ingest", {}), previous.get("durable_ingest", {})
    for metric, gated in (
        ("eps_off", False),
        ("eps_group", True),
        ("eps_always", False),
        ("group_ratio", False),
    ):
        c, p = cur.get(metric), prev.get(metric)
        if c is None:
            continue
        d = delta_pct(p, c)
        rows.append((f"durable_ingest.{metric}", p, c, d))
        if d is None:
            continue
        drop = -d  # throughput (and the off-vs-group ratio): a drop regresses
        label = f"durable_ingest {metric}: {d:+.1f}%"
        if gated and drop > GATE_DROP_PCT:
            failures.append(label)
        elif drop > WARN_DROP_PCT:
            warnings.append(label)

    # Standing-query line: delta delivery through a consuming
    # subscription. `notify_eps` (deltas delivered per second) carries
    # the throughput gate; `delta_lag_p99_ns` (submit-to-receipt lag at
    # the completion delta) gates as a latency — a rise past the gate
    # fails. The p50 and the idle-subscription overhead ratio (hard-
    # asserted >= 0.9 in-bench) ride along informationally.
    cur, prev = current.get("standing_query", {}), previous.get("standing_query", {})
    for metric, gated, higher_is_better in (
        ("notify_eps", True, True),
        ("delta_lag_p99_ns", True, False),
        ("delta_lag_p50_ns", False, False),
        ("sub_overhead_ratio", False, True),
    ):
        c, p = cur.get(metric), prev.get(metric)
        if c is None:
            continue
        d = delta_pct(p, c)
        rows.append((f"standing_query.{metric}", p, c, d))
        if d is None:
            continue
        drop = -d if higher_is_better else d
        label = f"standing_query {metric}: {d:+.1f}%"
        if gated and drop > GATE_DROP_PCT:
            failures.append(label)
        elif drop > WARN_DROP_PCT:
            warnings.append(label)

    # Cold-scan line: the buffer-manager sweep over the packed persisted
    # tier. `cold_scan_eps` (the mapped read path) carries the soft gate
    # like the tiering benches; the owned baseline, the mapped/owned
    # speedup, and the residency numbers ride along informationally.
    cur, prev = current.get("service_cold_scan", {}), previous.get("service_cold_scan", {})
    for metric, gated in (
        ("cold_scan_eps", True),
        ("owned_scan_eps", False),
        ("speedup", False),
    ):
        c, p = cur.get(metric), prev.get(metric)
        if c is None:
            continue
        d = delta_pct(p, c)
        rows.append((f"service_cold_scan.{metric}", p, c, d))
        if d is None:
            continue
        drop = -d  # throughput / ratio: a drop regresses
        label = f"service_cold_scan {metric}: {d:+.1f}%"
        if gated and drop > GATE_DROP_PCT:
            failures.append(label)
        elif drop > WARN_DROP_PCT:
            warnings.append(label)
    for f in ("mapped_resident_bytes", "owned_resident_bytes", "budget_bytes", "mapped_bytes"):
        if f in cur:
            rows.append((f"service_cold_scan.{f}", prev.get(f), cur.get(f), delta_pct(prev.get(f), cur.get(f))))

    # Observability lines: the instrumented-vs-bare throughput ratios
    # (obs_overhead's ON side carries telemetry spans *and* the stall
    # watchdog) and the EXPLAIN wrapper's tax on a warm fleet query.
    # Ratios are higher-is-better; the on/off ratios carry the soft gate
    # (the bench hard-asserts >= 0.95 in-run, so a trip here means the
    # instrumented build got relatively slower since the last artifact).
    for key, metrics in (
        ("obs_overhead", (("ingest_ratio", True), ("reach_ratio", True),
                          ("ingest_eps_on", False), ("reach_eps_on", False))),
        ("explain_overhead", (("explain_ratio", True), ("plain_qps", False),
                              ("explain_qps", False))),
        ("watchdog", (("ingest_ratio", False), ("reach_ratio", False),
                      ("interval_ms", False))),
    ):
        cur, prev = current.get(key, {}), previous.get(key, {})
        for metric, gated in metrics:
            c, p = cur.get(metric), prev.get(metric)
            if c is None:
                continue
            d = delta_pct(p, c)
            rows.append((f"{key}.{metric}", p, c, d))
            if d is None or metric == "interval_ms":
                continue
            drop = -d  # throughput or ratio: a drop regresses
            label = f"{key} {metric}: {d:+.1f}%"
            if gated and drop > GATE_DROP_PCT:
                failures.append(label)
            elif drop > WARN_DROP_PCT:
                warnings.append(label)

    # Footprint + compaction + recovery lines: informational.
    for key, fields in (
        ("tier_footprint", ("hot_bytes", "frozen_bytes", "persisted_bytes",
                            "persisted_resident_bytes", "segment_files",
                            "pack_pins", "pack_dead_bytes", "mapped_bytes",
                            "skl_bits", "skl_drl_bits")),
        ("compaction", ("files_before", "files_after", "bytes_after",
                        "dead_bytes_reclaimed", "runs_packed")),
        ("pack_gc", ("packs_rewritten", "runs_moved", "bytes_before",
                     "bytes_after", "dead_bytes_reclaimed")),
        ("wal_recovery_ms", ("records", "ms")),
    ):
        cur, prev = current.get(key, {}), previous.get(key, {})
        for f in fields:
            if f in cur:
                rows.append((f"{key}.{f}", prev.get(f), cur.get(f), delta_pct(prev.get(f), cur.get(f))))

    lines = ["## Perf trajectory", ""]
    if not previous:
        lines.append("_No previous artifact found — first data point, nothing to gate against._")
        lines.append("")
    lines.append("| metric | previous | current | Δ% |")
    lines.append("|---|---:|---:|---:|")
    for name, p, c, d in rows:
        lines.append(f"| `{name}` | {fmt(p)} | {fmt(c)} | {'—' if d is None else f'{d:+.1f}%'} |")
    lines.append("")
    if len(prev_paths) >= 1:
        all_paths = prev_paths + [cur_path]
        lines += history_section(all_paths, [load(p) for p in all_paths])
    if failures:
        lines.append(f"**GATE FAILED** (>{GATE_DROP_PCT:.0f}% throughput drop / p99 rise): " + "; ".join(failures))
    elif warnings:
        lines.append("Soft warnings: " + "; ".join(warnings))
    else:
        lines.append("No regressions beyond noise thresholds.")
    report = "\n".join(lines) + "\n"

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(report)
    print(report)

    for w in warnings:
        print(f"::warning::perf drop (soft): {w}")
    if failures:
        for f in failures:
            print(f"::error::perf cliff (>{GATE_DROP_PCT:.0f}%): {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
